"""Unit tests: the lock-light metrics registry (repro.obs.metrics)."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    MetricsRegistry,
    enabled,
    labeled,
    set_enabled,
)


class TestLabels:
    def test_no_labels_is_plain_name(self):
        assert labeled("a.b") == "a.b"

    def test_labels_sorted_and_folded(self):
        assert labeled("cmd", b=2, a=1) == "cmd{a=1,b=2}"


class TestCounters:
    def test_inc_and_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 4)
        reg.inc("y", 2.5)
        snap = reg.snapshot()
        assert snap["counters"]["x"] == 5
        assert snap["counters"]["y"] == 2.5

    def test_labeled_counters_are_distinct(self):
        reg = MetricsRegistry()
        reg.inc("cmd", command="step")
        reg.inc("cmd", command="step")
        reg.inc("cmd", command="resume")
        snap = reg.snapshot()
        assert snap["counters"]["cmd{command=step}"] == 2
        assert snap["counters"]["cmd{command=resume}"] == 1

    def test_concurrent_increments_sum_exactly(self):
        """The tentpole claim: per-thread shards lose no increments.

        Eight threads hammer the same counter with no lock on the inc
        path; the merged snapshot must equal the exact total.
        """
        reg = MetricsRegistry()
        n_threads, n_incs = 8, 5000
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(n_incs):
                reg.inc("hot")
                reg.observe("lat", 0.001)

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        snap = reg.snapshot()
        assert snap["counters"]["hot"] == n_threads * n_incs
        assert snap["histograms"]["lat"]["count"] == n_threads * n_incs

    def test_snapshot_during_concurrent_writes_is_sane(self):
        """Snapshotting mid-storm never crashes and never over-counts."""
        reg = MetricsRegistry()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                reg.inc("storm")

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            last = 0
            for _ in range(50):
                value = reg.snapshot()["counters"].get("storm", 0)
                assert value >= last  # monotone under concurrent incs
                last = value
        finally:
            stop.set()
            for t in threads:
                t.join(10)


class TestHistograms:
    def test_bucketing_and_stats(self):
        reg = MetricsRegistry()
        for v in (0.0005, 0.002, 0.002, 1.5):
            reg.observe("d", v)
        hist = reg.snapshot()["histograms"]["d"]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(1.5045)
        assert hist["min"] == pytest.approx(0.0005)
        assert hist["max"] == pytest.approx(1.5)
        assert len(hist["bounds"]) == len(DEFAULT_BOUNDS)
        assert len(hist["counts"]) == len(DEFAULT_BOUNDS) + 1
        assert sum(hist["counts"]) == 4

    def test_declared_bounds_override_default(self):
        reg = MetricsRegistry()
        reg.declare_histogram("sized", (10, 100, 1000))
        reg.observe("sized", 50)
        hist = reg.snapshot()["histograms"]["sized"]
        assert hist["bounds"] == [10, 100, 1000]
        assert hist["counts"] == [0, 1, 0, 0]


class TestGauges:
    def test_set_gauge(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        assert reg.snapshot()["gauges"]["depth"] == 3

    def test_callback_gauge_evaluated_at_snapshot(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        reg.register_gauge("live", lambda: box["v"])
        assert reg.snapshot()["gauges"]["live"] == 1.0
        box["v"] = 7
        assert reg.snapshot()["gauges"]["live"] == 7.0

    def test_failing_callback_gauge_is_dropped_not_fatal(self):
        reg = MetricsRegistry()

        def boom():
            raise RuntimeError("dead gauge")

        reg.register_gauge("bad", boom)
        reg.set_gauge("good", 1)
        snap = reg.snapshot()
        assert "bad" not in snap["gauges"]
        assert snap["gauges"]["good"] == 1

    def test_unregister_gauge(self):
        reg = MetricsRegistry()
        reg.register_gauge("g", lambda: 1)
        reg.unregister_gauge("g")
        assert "g" not in reg.snapshot()["gauges"]


class TestEnableSwitch:
    def test_disabled_recording_is_a_no_op(self):
        reg = MetricsRegistry()
        assert enabled()
        set_enabled(False)
        try:
            reg.inc("off")
            reg.observe("off.h", 1.0)
            assert not enabled()
        finally:
            set_enabled(True)
        snap = reg.snapshot()
        assert "off" not in snap["counters"]
        assert "off.h" not in snap["histograms"]
        reg.inc("on")
        assert reg.snapshot()["counters"]["on"] == 1


class TestSnapshotReset:
    def test_reset_drains_counters_keeps_labels(self):
        reg = MetricsRegistry(labels={"program": "t"})
        reg.inc("c")
        first = reg.snapshot(reset=True)
        assert first["counters"]["c"] == 1
        second = reg.snapshot()
        assert second["counters"] == {}
        assert second["labels"]["program"] == "t"

    def test_writes_after_reset_land_in_fresh_shards(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.snapshot(reset=True)
        reg.inc("c", 2)
        assert reg.snapshot()["counters"]["c"] == 2


class TestForkAwareness:
    def test_reset_after_fork_relabels_and_drops(self):
        reg = MetricsRegistry(labels={"program": "parent-prog"})
        reg.inc("parent.only", 9)
        reg.set_gauge("parent.g", 1)
        epoch_before = reg.labels["epoch"]
        reg.reset_after_fork(labels={"program": "child-prog"})
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["labels"]["epoch"] == epoch_before + 1
        assert snap["labels"]["program"] == "child-prog"
        import os
        assert snap["labels"]["pid"] == os.getpid()

    def test_reset_after_fork_survives_a_held_lock(self):
        # A parent thread mid-snapshot at the fork moment leaves the
        # inherited lock held forever in the single-threaded child; the
        # reset must replace the lock, never acquire it.
        reg = MetricsRegistry()
        inherited = reg._lock
        inherited.acquire()
        try:
            reg.reset_after_fork()
        finally:
            inherited.release()
        assert reg._lock is not inherited
        reg.inc("child.only")
        assert reg.snapshot()["counters"] == {"child.only": 1}

"""Unit tests: the engine's fast-path quiet flag (performance contract).

The §7 overhead band depends on `_quiet` being True exactly when no
debugging feature is live; every toggle path must invalidate it.
"""

import pytest

from repro.core.disturb import DisturbMode
from repro.tracing.engine import TraceEngine
from repro.util.ids import UEId

UE = UEId(1, 1)


@pytest.fixture
def engine():
    return TraceEngine(park_timeout=0.1)


class TestQuietTransitions:
    def test_starts_quiet(self, engine):
        assert engine._quiet

    def test_breakpoint_add_remove(self, engine):
        bp = engine.breakpoints.add("/f.py", 1)
        assert not engine._quiet
        engine.breakpoints.remove(bp.id)
        assert engine._quiet

    def test_function_breakpoint(self, engine):
        bp = engine.breakpoints.add_function("f")
        assert not engine._quiet
        engine.breakpoints.remove(bp.id)
        assert engine._quiet

    def test_breakpoint_clear(self, engine):
        engine.breakpoints.add("/f.py", 1)
        engine.breakpoints.add("/g.py", 2)
        engine.breakpoints.clear()
        assert engine._quiet

    def test_watchpoint_toggle(self, engine):
        watch = engine.watchpoints.add("x")
        assert not engine._quiet
        engine.watchpoints.remove(watch.id)
        assert engine._quiet

    def test_exception_breaks_toggle(self, engine):
        engine.set_exception_breaks(True)
        assert not engine._quiet
        engine.set_exception_breaks(False)
        assert engine._quiet

    def test_suspend_request_and_resume_all(self, engine):
        engine.controller.request_suspend(UE)
        engine.refresh_quiet()
        assert not engine._quiet
        engine.resume_all()
        assert engine._quiet

    def test_suspend_all_and_resume_all(self, engine):
        engine.request_suspend_all()
        assert not engine._quiet
        engine.resume_all()
        assert engine._quiet

    def test_disturb_toggle_via_on_change(self):
        disturb = DisturbMode()
        engine = TraceEngine(disturb=disturb, park_timeout=0.1)
        disturb.on_change = engine.refresh_quiet
        assert engine._quiet
        disturb.set_enabled(True)
        assert not engine._quiet
        disturb.set_enabled(False)
        assert engine._quiet

    def test_reset_after_fork_recomputes(self, engine):
        engine.controller.request_suspend(UE)
        engine.refresh_quiet()
        assert not engine._quiet
        engine.reset_after_fork()
        assert engine._quiet  # pending suspends died with parent UEs


class TestQuietBehaviour:
    """Dispatch decisions, driven directly (no sys.settrace installed —
    the installed flag is set by hand so dispatch proceeds)."""

    @pytest.fixture(autouse=True)
    def mark_installed(self, engine):
        engine._installed = True
        yield
        engine._installed = False

    def test_quiet_dispatch_returns_none(self, engine):
        import sys
        frame = sys._getframe()
        assert engine._global_dispatch(frame, "call", None) is None

    def test_nonquiet_dispatch_returns_local(self, engine):
        import sys
        engine.breakpoints.add("/elsewhere.py", 5)
        frame = sys._getframe()
        # non-quiet but nothing relevant to THIS frame: local tracing is
        # declined (no breakpoint in this file, no stepping)
        result = engine._global_dispatch(frame, "call", None)
        assert result is None

    def test_watchpoints_force_local_tracing(self, engine):
        import sys
        engine.watchpoints.add("whatever")
        frame = sys._getframe()
        result = engine._global_dispatch(frame, "call", None)
        assert result == engine._local_dispatch

    def test_exception_breaks_force_local_tracing(self, engine):
        import sys
        engine.set_exception_breaks(True)
        frame = sys._getframe()
        assert engine._global_dispatch(frame, "call", None) == \
            engine._local_dispatch

    def test_event_counter_still_counts_when_quiet(self, engine):
        import sys
        before = engine.event_count
        engine._global_dispatch(sys._getframe(), "call", None)
        assert engine.event_count == before + 1

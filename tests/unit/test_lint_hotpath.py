"""Unit tests: the hot-path lint's clock-pair rule (tools/lint_hotpath)."""

import importlib.util
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
LINT_PATH = os.path.join(REPO_ROOT, "tools", "lint_hotpath.py")


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("lint_hotpath", LINT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestClockPairRule:
    def test_lone_wall_clock_is_flagged(self, lint, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n")
        hits = lint.find_unpaired_wall_clock(str(path))
        assert len(hits) == 1
        assert "stamp" in hits[0][1]

    def test_paired_wall_clock_passes(self, lint, tmp_path):
        path = tmp_path / "good.py"
        path.write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time(), time.monotonic()\n")
        assert lint.find_unpaired_wall_clock(str(path)) == []

    def test_monotonic_alone_passes(self, lint, tmp_path):
        path = tmp_path / "mono.py"
        path.write_text(
            "import time\n"
            "def dur():\n"
            "    return time.monotonic()\n")
        assert lint.find_unpaired_wall_clock(str(path)) == []

    def test_timeline_modules_are_scanned(self, lint):
        for module in lint.CLOCK_PAIR_MODULES:
            assert os.path.isfile(os.path.join(REPO_ROOT, module)), module


class TestWholeRepo:
    def test_lint_passes_on_this_tree(self, lint, capsys):
        assert lint.main([sys.argv[0], REPO_ROOT]) == 0
        assert "OK" in capsys.readouterr().out

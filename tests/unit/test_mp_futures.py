"""Unit tests: executor facade (repro.mp.futures)."""

import os
import threading
import time

import pytest

from repro.mp.futures import Future, ProcessPoolExecutor, as_completed
from repro.mp.pool import RemoteError
from repro.util.errors import PoolError

pytestmark = pytest.mark.forks


def square(x):
    return x * x


def add(a, b):
    return a + b


def crash(x):
    raise RuntimeError(f"boom {x}")


def slow(x):
    time.sleep(x)
    return x


class TestSubmit:
    def test_submit_result(self):
        with ProcessPoolExecutor(2) as pool:
            assert pool.submit(square, 6).result(10) == 36

    def test_submit_kwargs(self):
        with ProcessPoolExecutor(2) as pool:
            assert pool.submit(add, 1, b=2).result(10) == 3

    def test_done_transitions(self):
        with ProcessPoolExecutor(1) as pool:
            future = pool.submit(slow, 0.2)
            assert future.running() and not future.done()
            assert future.result(10) == 0.2
            assert future.done() and not future.running()

    def test_exception_result_raises(self):
        with ProcessPoolExecutor(1) as pool:
            future = pool.submit(crash, 5)
            with pytest.raises(RemoteError, match="boom 5"):
                future.result(10)
            assert isinstance(future.exception(10), RemoteError)

    def test_exception_none_on_success(self):
        with ProcessPoolExecutor(1) as pool:
            assert pool.submit(square, 2).exception(10) is None

    def test_cancel_unsupported(self):
        with ProcessPoolExecutor(1) as pool:
            future = pool.submit(square, 2)
            assert future.cancel() is False
            assert future.cancelled() is False
            future.result(10)

    def test_worker_pid_is_a_child(self):
        with ProcessPoolExecutor(2) as pool:
            future = pool.submit(os.getpid)
            child = future.result(10)
            assert future.worker_pid == child != os.getpid()


class TestMap:
    def test_ordered_results(self):
        with ProcessPoolExecutor(3) as pool:
            assert list(pool.map(square, range(10))) == \
                [x * x for x in range(10)]

    def test_multiple_iterables(self):
        with ProcessPoolExecutor(2) as pool:
            assert list(pool.map(add, [1, 2, 3], [10, 20, 30])) == \
                [11, 22, 33]

    def test_map_is_lazy_but_submitted_eagerly(self):
        with ProcessPoolExecutor(2) as pool:
            iterator = pool.map(square, [4])
            assert next(iterator) == 16


class TestShutdown:
    def test_submit_after_shutdown_rejected(self):
        pool = ProcessPoolExecutor(1)
        pool.shutdown()
        with pytest.raises(PoolError):
            pool.submit(square, 1)

    def test_shutdown_idempotent(self):
        pool = ProcessPoolExecutor(1)
        pool.shutdown()
        pool.shutdown()

    def test_context_manager_waits(self):
        with ProcessPoolExecutor(2) as pool:
            futures = [pool.submit(square, i) for i in range(4)]
        assert [f.result(1) for f in futures] == [0, 1, 4, 9]


class TestCallbacks:
    def test_done_callback_fires(self):
        fired = threading.Event()
        box = {}

        def callback(future):
            box["value"] = future.result(1)
            fired.set()

        with ProcessPoolExecutor(1) as pool:
            future = pool.submit(square, 7)
            future.add_done_callback(callback)
            assert fired.wait(10)
            assert box["value"] == 49

    def test_callback_on_already_done_future(self):
        with ProcessPoolExecutor(1) as pool:
            future = pool.submit(square, 3)
            future.result(10)
            seen = []
            future.add_done_callback(lambda f: seen.append(f.result(1)))
            assert seen == [9]

    def test_callback_exception_contained(self):
        with ProcessPoolExecutor(1) as pool:
            future = pool.submit(square, 2)
            future.add_done_callback(lambda f: 1 / 0)
            assert future.result(10) == 4  # executor unharmed


class TestAsCompleted:
    def test_yields_in_completion_order(self):
        with ProcessPoolExecutor(2) as pool:
            slow_future = pool.submit(slow, 0.4)
            fast_future = pool.submit(slow, 0.05)
            ordered = list(as_completed([slow_future, fast_future]))
            assert ordered[0] is fast_future
            assert ordered[1] is slow_future

    def test_timeout_raises(self):
        with ProcessPoolExecutor(1) as pool:
            future = pool.submit(slow, 2.0)
            with pytest.raises(PoolError):
                list(as_completed([future], timeout=0.1))
            future.result(10)

"""Unit tests: stack capture and rendering (repro.tracing.frames)."""

import json
import sys

from repro.tracing.frames import (
    FrameInfo,
    StackCapture,
    capture_frame,
    capture_stack,
    evaluate_in_frame,
    frame_location,
    source_line,
)


def grab_frame():
    """A real frame with known locals."""
    local_x = 41  # noqa: F841 - inspected via the frame
    return sys._getframe()


class TestCaptureFrame:
    def test_captures_location_and_locals(self):
        frame = grab_frame()
        info = capture_frame(frame)
        assert info.file.endswith("test_frames.py")
        assert info.function == "grab_frame"
        assert info.locals["local_x"] == "41"

    def test_source_text_present(self):
        frame = grab_frame()
        info = capture_frame(frame)
        assert "return sys._getframe()" in info.source

    def test_without_locals(self):
        info = capture_frame(grab_frame(), with_locals=False)
        assert info.locals == {}


class TestCaptureStack:
    def _inner(self, depth):
        if depth:
            return self._inner(depth - 1)
        return capture_stack(sys._getframe(), reason="test")

    def test_innermost_first(self):
        capture = self._inner(3)
        assert capture.frames[0].function == "_inner"
        functions = [f.function for f in capture.frames]
        assert functions.count("_inner") == 4

    def test_max_depth_bounds_stack(self):
        capture = capture_stack(self._inner(10).frames and sys._getframe(),
                                reason="r", max_depth=2)
        assert len(capture.frames) == 2

    def test_locals_depth_limits_rendering(self):
        capture = self._inner(5)
        rendered = [bool(f.locals) for f in capture.frames[:4]]
        assert rendered[0] and rendered[1]
        assert not rendered[2] and not rendered[3]

    def test_reason_and_breakpoint_id(self):
        capture = capture_stack(sys._getframe(), reason="breakpoint",
                                breakpoint_id=7)
        assert capture.reason == "breakpoint"
        assert capture.breakpoint_id == 7


class TestWireRoundtrip:
    def test_frame_info_roundtrip(self):
        info = FrameInfo(file="f.py", line=3, function="g",
                         source="x = 1", locals={"x": "1"})
        assert FrameInfo.from_wire(info.to_wire()) == info

    def test_stack_capture_roundtrip(self):
        capture = capture_stack(sys._getframe(), reason="step")
        wire = capture.to_wire()
        json.dumps(wire)  # must be JSON-safe
        back = StackCapture.from_wire(wire)
        assert back.reason == "step"
        assert back.frames[0].function == capture.frames[0].function

    def test_top_of_empty_capture(self):
        assert StackCapture(frames=[], reason="x").top is None


class TestHelpers:
    def test_source_line_reads_this_file(self):
        line = source_line(__file__, 1)
        assert "Unit tests" in line

    def test_source_line_missing_file(self):
        assert source_line("/no/such/file.py", 1) == ""

    def test_frame_location_format(self):
        location = frame_location(sys._getframe())
        assert "test_frames.py" in location
        assert "test_frame_location_format" in location

    def test_evaluate_in_frame(self):
        y = 10  # noqa: F841
        assert evaluate_in_frame(sys._getframe(), "y * 2") == 20

    def test_evaluate_sees_globals(self):
        assert evaluate_in_frame(sys._getframe(), "__name__") == __name__

"""Unit tests: shuffle partitioning (repro.mapreduce.partition)."""

import pytest

from repro.mapreduce.partition import partition_for, shuffle, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("word") == stable_hash("word")

    def test_known_value_pinned(self):
        """CRC-32 is a fixed algorithm: pin known values so an accidental
        change to the hash (which would break cross-process agreement
        between mappers and reducers) fails loudly."""
        assert stable_hash("") == 0
        assert stable_hash("a") == 0xE8B7BE43  # crc32(b"a")

    def test_spreads_keys(self):
        buckets = {stable_hash(f"key{i}") % 8 for i in range(1000)}
        assert len(buckets) == 8

    def test_32_bit_range(self):
        for key in ("a", "zzz", "長い言葉"):
            assert 0 <= stable_hash(key) < 2 ** 32


class TestPartitionFor:
    def test_in_range(self):
        for i in range(100):
            assert 0 <= partition_for(f"k{i}", 7) < 7

    def test_single_partition(self):
        assert partition_for("anything", 1) == 0

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            partition_for("x", 0)


class TestShuffle:
    def test_groups_values_by_key(self):
        partials = [{"a": 1, "b": 2}, {"a": 3}, {"b": 4, "c": 5}]
        buckets = shuffle(partials, 1)
        assert buckets[0] == [("a", [1, 3]), ("b", [2, 4]), ("c", [5])]

    def test_each_key_in_exactly_one_bucket(self):
        partials = [{f"key{i}": i for i in range(100)}]
        buckets = shuffle(partials, 5)
        seen = [k for bucket in buckets for k, _ in bucket]
        assert sorted(seen) == sorted(f"key{i}" for i in range(100))

    def test_bucket_assignment_matches_partition_for(self):
        partials = [{"alpha": 1, "beta": 2}]
        buckets = shuffle(partials, 4)
        for index, bucket in enumerate(buckets):
            for key, _ in bucket:
                assert partition_for(key, 4) == index

    def test_buckets_sorted_by_key(self):
        partials = [{"z": 1, "a": 2, "m": 3}]
        bucket = shuffle(partials, 1)[0]
        assert [k for k, _ in bucket] == sorted(k for k, _ in bucket)

    def test_empty_input(self):
        assert shuffle([], 3) == [[], [], []]

"""Unit tests: wait-for graph and deadlock detection (repro.core.deadlock)."""

import json

from repro.core.deadlock import DeadlockDetector, WaitForGraph
from repro.util.ids import UEId

A = UEId(1, 11)
B = UEId(1, 22)
C = UEId(1, 33)


class TestGraphBookkeeping:
    def test_add_and_clear_wait(self):
        graph = WaitForGraph()
        graph.add_wait(A, "lock1", "app.py:10 (f)")
        assert len(graph.waits()) == 1
        graph.clear_wait(A)
        assert graph.waits() == []

    def test_wait_replaces_previous(self):
        graph = WaitForGraph()
        graph.add_wait(A, "r1", "x:1")
        graph.add_wait(A, "r2", "x:2")
        waits = graph.waits()
        assert len(waits) == 1 and waits[0].resource == "r2"

    def test_holds_and_release(self):
        graph = WaitForGraph()
        graph.add_hold(A, "lock1")
        graph.add_hold(B, "lock1")
        assert graph.holders_of("lock1") == {A, B}
        graph.release_hold(A, "lock1")
        assert graph.holders_of("lock1") == {B}
        graph.release_hold(B, "lock1")
        assert graph.holders_of("lock1") == set()

    def test_release_unknown_is_noop(self):
        WaitForGraph().release_hold(A, "ghost")

    def test_reset(self):
        graph = WaitForGraph()
        graph.add_wait(A, "r", "x:1")
        graph.add_hold(B, "r")
        graph.reset()
        assert graph.waits() == [] and graph.holders_of("r") == set()


class TestCycleDetection:
    def test_two_party_deadlock(self):
        graph = WaitForGraph()
        graph.add_hold(A, "L1")
        graph.add_hold(B, "L2")
        graph.add_wait(A, "L2", "app.py:10 (f)")
        graph.add_wait(B, "L1", "app.py:20 (g)")
        cycles = graph.find_cycles()
        assert len(cycles) == 1
        chain = cycles[0]
        assert str(A) in chain and str(B) in chain
        assert "L1" in chain and "L2" in chain

    def test_three_party_ring(self):
        graph = WaitForGraph()
        for ue, held, wanted in ((A, "L1", "L2"), (B, "L2", "L3"),
                                 (C, "L3", "L1")):
            graph.add_hold(ue, held)
            graph.add_wait(ue, wanted, "x:1")
        cycles = graph.find_cycles()
        assert len(cycles) == 1
        assert len([n for n in cycles[0] if n.startswith("ue:")]) == 3

    def test_no_cycle_for_simple_contention(self):
        graph = WaitForGraph()
        graph.add_hold(A, "L1")
        graph.add_wait(B, "L1", "x:1")  # B waits, A runs free
        assert graph.find_cycles() == []

    def test_no_cycle_for_chain(self):
        graph = WaitForGraph()
        graph.add_hold(A, "L1")
        graph.add_hold(B, "L2")
        graph.add_wait(B, "L1", "x:1")
        graph.add_wait(C, "L2", "x:2")
        assert graph.find_cycles() == []

    def test_self_deadlock(self):
        graph = WaitForGraph()
        graph.add_hold(A, "L1")
        graph.add_wait(A, "L1", "x:1")  # non-reentrant lock re-acquired
        cycles = graph.find_cycles()
        assert len(cycles) == 1

    def test_cycle_reported_once(self):
        graph = WaitForGraph()
        graph.add_hold(A, "L1")
        graph.add_hold(B, "L2")
        graph.add_wait(A, "L2", "x:1")
        graph.add_wait(B, "L1", "x:2")
        assert len(graph.find_cycles()) == 1  # not once per start node


class TestOrphanedWaits:
    def test_wait_on_dead_holder_flagged(self):
        graph = WaitForGraph()
        dead = UEId(1, 99)
        graph.add_hold(dead, "L1")
        graph.add_wait(A, "L1", "child.py:14 (work)")
        orphans = graph.orphaned_waits(live_ues=[A])
        assert len(orphans) == 1
        assert orphans[0].location == "child.py:14 (work)"

    def test_wait_on_live_holder_not_flagged(self):
        graph = WaitForGraph()
        graph.add_hold(B, "L1")
        graph.add_wait(A, "L1", "x:1")
        assert graph.orphaned_waits(live_ues=[A, B]) == []

    def test_holderless_resource_not_flagged(self):
        """Queues have producers, not holders: never flag on absence."""
        graph = WaitForGraph()
        graph.add_wait(A, "queue-1", "x:1")
        assert graph.orphaned_waits(live_ues=[A]) == []

    def test_dead_waiter_ignored(self):
        graph = WaitForGraph()
        dead = UEId(1, 99)
        graph.add_hold(dead, "L1")
        graph.add_wait(dead, "L1", "x:1")
        assert graph.orphaned_waits(live_ues=[A]) == []


class TestDetectorReport:
    def test_report_is_wire_safe(self):
        detector = DeadlockDetector()
        detector.graph.add_hold(A, "L1")
        detector.graph.add_hold(B, "L2")
        detector.graph.add_wait(A, "L2", "f.py:1 (a)")
        detector.graph.add_wait(B, "L1", "f.py:2 (b)")
        report = detector.report()
        json.dumps(report)
        assert report["available"]
        assert len(report["cycles"]) == 1
        locations = report["cycles"][0]["locations"]
        assert locations[str(A)] == "f.py:1 (a)"
        assert locations[str(B)] == "f.py:2 (b)"

    def test_all_blocked_false_with_running_threads(self):
        # The calling (test) thread is alive and not waiting.
        detector = DeadlockDetector()
        assert not detector.all_blocked()

    def test_report_lists_plain_waits(self):
        detector = DeadlockDetector()
        detector.graph.add_wait(A, "q", "user.py:14 (main)")
        report = detector.report()
        assert report["waiting"] == [
            {"ue": str(A), "resource": "q", "location": "user.py:14 (main)"}]

    def test_reset_after_fork_clears(self):
        detector = DeadlockDetector()
        detector.graph.add_wait(A, "q", "x:1")
        detector.reset_after_fork()
        assert detector.report()["waiting"] == []

"""Unit tests: wire-protocol shapes (repro.server.protocol)."""

import pytest

from repro.server import protocol
from repro.util.errors import ProtocolError
from repro.util.ids import UEId


class TestHello:
    def test_make_and_validate(self):
        hello = protocol.make_hello(protocol.ROLE_COMMAND, pid=1,
                                    session_token="t")
        protocol.validate_hello(hello)

    def test_invalid_role_rejected_at_construction(self):
        with pytest.raises(ProtocolError):
            protocol.make_hello("admin", pid=1, session_token="t")

    def test_validate_rejects_wrong_version(self):
        hello = protocol.make_hello(protocol.ROLE_SOURCE, pid=1,
                                    session_token="t")
        hello["version"] = 99
        with pytest.raises(ProtocolError, match="version"):
            protocol.validate_hello(hello)

    def test_validate_rejects_tampered_role(self):
        hello = protocol.make_hello(protocol.ROLE_SOURCE, pid=1,
                                    session_token="t")
        hello["role"] = "root"
        with pytest.raises(ProtocolError):
            protocol.validate_hello(hello)


class TestRequestResponse:
    def test_request_shape(self):
        req = protocol.make_request(3, "set_break", {"file": "f", "line": 1})
        protocol.validate_request(req)
        assert req["id"] == 3

    def test_request_default_args(self):
        req = protocol.make_request(1, "threads")
        assert req["args"] == {}

    def test_validate_rejects_missing_id(self):
        req = protocol.make_request(1, "x")
        del req["id"]
        with pytest.raises(ProtocolError):
            protocol.validate_request(req)

    def test_validate_rejects_non_string_command(self):
        req = protocol.make_request(1, "x")
        req["command"] = 5
        with pytest.raises(ProtocolError):
            protocol.validate_request(req)

    def test_validate_rejects_non_dict_args(self):
        req = protocol.make_request(1, "x")
        req["args"] = [1]
        with pytest.raises(ProtocolError):
            protocol.validate_request(req)

    def test_response_ok(self):
        resp = protocol.make_response(5, {"a": 1})
        assert resp["ok"] and resp["result"] == {"a": 1}

    def test_error_response(self):
        resp = protocol.make_error(5, "nope", kind="SessionError")
        assert not resp["ok"]
        assert resp["error"] == {"kind": "SessionError", "message": "nope"}


class TestEnvelope:
    def test_message_type_dispatch(self):
        assert protocol.message_type(protocol.make_event("stopped")) == \
            "event"

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.message_type([1, 2])

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.message_type({"type": "telnet"})


class TestUEWire:
    def test_roundtrip(self):
        ue = UEId(12, 345)
        assert protocol.ue_from_wire(protocol.ue_to_wire(ue)) == ue

    def test_bad_wire_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.ue_from_wire({"pid": "x"})
        with pytest.raises(ProtocolError):
            protocol.ue_from_wire({})

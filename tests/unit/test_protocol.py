"""Unit tests: wire-protocol shapes (repro.server.protocol)."""

import pytest

from repro.server import protocol
from repro.util.errors import ProtocolError
from repro.util.ids import UEId


class TestHello:
    def test_make_and_validate(self):
        hello = protocol.make_hello(protocol.ROLE_COMMAND, pid=1,
                                    session_token="t")
        protocol.validate_hello(hello)

    def test_invalid_role_rejected_at_construction(self):
        with pytest.raises(ProtocolError):
            protocol.make_hello("admin", pid=1, session_token="t")

    def test_validate_rejects_wrong_version(self):
        hello = protocol.make_hello(protocol.ROLE_SOURCE, pid=1,
                                    session_token="t")
        hello["version"] = 99
        with pytest.raises(ProtocolError, match="version"):
            protocol.validate_hello(hello)

    def test_validate_rejects_tampered_role(self):
        hello = protocol.make_hello(protocol.ROLE_SOURCE, pid=1,
                                    session_token="t")
        hello["role"] = "root"
        with pytest.raises(ProtocolError):
            protocol.validate_hello(hello)


class TestRequestResponse:
    def test_request_shape(self):
        req = protocol.make_request(3, "set_break", {"file": "f", "line": 1})
        protocol.validate_request(req)
        assert req["id"] == 3

    def test_request_default_args(self):
        req = protocol.make_request(1, "threads")
        assert req["args"] == {}

    def test_validate_rejects_missing_id(self):
        req = protocol.make_request(1, "x")
        del req["id"]
        with pytest.raises(ProtocolError):
            protocol.validate_request(req)

    def test_validate_rejects_non_string_command(self):
        req = protocol.make_request(1, "x")
        req["command"] = 5
        with pytest.raises(ProtocolError):
            protocol.validate_request(req)

    def test_validate_rejects_non_dict_args(self):
        req = protocol.make_request(1, "x")
        req["args"] = [1]
        with pytest.raises(ProtocolError):
            protocol.validate_request(req)

    def test_response_ok(self):
        resp = protocol.make_response(5, {"a": 1})
        assert resp["ok"] and resp["result"] == {"a": 1}

    def test_error_response(self):
        resp = protocol.make_error(5, "nope", kind="SessionError")
        assert not resp["ok"]
        assert resp["error"] == {"kind": "SessionError", "message": "nope"}


class TestEnvelope:
    def test_message_type_dispatch(self):
        assert protocol.message_type(protocol.make_event("stopped")) == \
            "event"

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.message_type([1, 2])

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.message_type({"type": "telnet"})


class TestUEWire:
    def test_roundtrip(self):
        ue = UEId(12, 345)
        assert protocol.ue_from_wire(protocol.ue_to_wire(ue)) == ue

    def test_bad_wire_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.ue_from_wire({"pid": "x"})
        with pytest.raises(ProtocolError):
            protocol.ue_from_wire({})


class TestHeartbeat:
    def test_ping_pong_shapes(self):
        ping = protocol.make_ping(7)
        assert ping == {"type": "ping", "seq": 7}
        pong = protocol.make_pong(7, pid=123)
        assert pong["type"] == "pong"
        assert pong["seq"] == 7
        assert pong["pid"] == 123

    def test_ping_pong_are_valid_envelope_types(self):
        assert protocol.message_type(protocol.make_ping(1)) == "ping"
        assert protocol.message_type(protocol.make_pong(1)) == "pong"


class TestReattach:
    def test_hello_omits_resume_token_by_default(self):
        hello = protocol.make_hello(protocol.ROLE_COMMAND, pid=1,
                                    session_token="t")
        assert "resume_token" not in hello

    def test_hello_carries_resume_token_and_validates(self):
        hello = protocol.make_hello(protocol.ROLE_COMMAND, pid=1,
                                    session_token="t",
                                    resume_token="epoch-token")
        assert hello["resume_token"] == "epoch-token"
        protocol.validate_hello(hello)

    def test_hello_ack_carries_supervision_fields(self):
        ack = protocol.make_hello_ack(pid=1, parent_pid=0,
                                      program="p", main_thread=1,
                                      session_token="srv-token",
                                      resumed=True)
        assert ack["session_token"] == "srv-token"
        assert ack["resumed"] is True
        plain = protocol.make_hello_ack(pid=1, parent_pid=0,
                                        program="p", main_thread=1)
        assert plain["session_token"] is None
        assert plain["resumed"] is False

"""Unit tests: the software TM substrate (repro.stm)."""

import threading

import pytest

from repro.stm import (
    MONITOR,
    STMError,
    TVar,
    atomically,
    current_transaction,
    thread_stats,
)


@pytest.fixture(autouse=True)
def reset_monitor():
    MONITOR.reset()
    yield
    MONITOR.reset()


class TestBasics:
    def test_read_write_commit(self):
        var = TVar(10)

        def body(tx):
            tx.write(var, tx.read(var) + 5)
            return "done"

        assert atomically(body) == "done"
        assert var.peek() == 15

    def test_read_own_write(self):
        var = TVar(1)

        def body(tx):
            tx.write(var, 100)
            return tx.read(var)

        assert atomically(body) == 100

    def test_read_only_transaction(self):
        a, b = TVar(3), TVar(4)
        assert atomically(lambda tx: tx.read(a) + tx.read(b)) == 7

    def test_multiple_vars_commit_together(self):
        a, b = TVar(100), TVar(0)

        def transfer(tx):
            amount = 30
            tx.write(a, tx.read(a) - amount)
            tx.write(b, tx.read(b) + amount)

        atomically(transfer)
        assert (a.peek(), b.peek()) == (70, 30)

    def test_version_advances_on_commit(self):
        var = TVar(0)
        before = var.version
        atomically(lambda tx: tx.write(var, 1))
        assert var.version > before

    def test_no_transaction_outside(self):
        assert current_transaction() is None

    def test_nested_atomically_rejected(self):
        var = TVar(0)

        def outer(tx):
            return atomically(lambda inner: inner.read(var))

        with pytest.raises(STMError):
            atomically(outer)

    def test_finished_transaction_rejects_use(self):
        leaked = {}

        def body(tx):
            leaked["tx"] = tx
            return None

        atomically(body)
        with pytest.raises(STMError):
            leaked["tx"].read(TVar(1))
        with pytest.raises(STMError):
            leaked["tx"].write(TVar(1), 2)


class TestRetrySemantics:
    def test_explicit_retry_reruns_body(self):
        var = TVar(0)
        attempts = []

        def body(tx):
            attempts.append(1)
            if len(attempts) < 3:
                tx.retry()
            return tx.read(var)

        assert atomically(body) == 0
        assert len(attempts) == 3

    def test_stats_count_commits_and_aborts(self):
        stats = thread_stats()
        commits_before = stats.commits
        aborts_before = stats.aborts
        var = TVar(0)
        flag = []

        def body(tx):
            if not flag:
                flag.append(1)
                tx.retry()
            return tx.read(var)

        atomically(body)
        assert stats.commits == commits_before + 1
        assert stats.aborts == aborts_before + 1
        assert stats.streak == 0  # reset on commit

    def test_exhausted_attempts_raise(self):
        def always_retry(tx):
            tx.retry()

        with pytest.raises(STMError, match="failed to commit"):
            atomically(always_retry, max_attempts=5)


class TestAtomicityUnderContention:
    def test_parallel_increments_lose_nothing(self):
        counter = TVar(0)
        n_threads, per_thread = 8, 200

        def bump():
            for _ in range(per_thread):
                atomically(lambda tx: tx.write(counter,
                                               tx.read(counter) + 1))

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.peek() == n_threads * per_thread

    def test_invariant_preserved_across_transfers(self):
        """Classic bank-transfer isolation: total is constant at every
        observation point."""
        accounts = [TVar(100, name=f"acct{i}") for i in range(4)]
        stop = threading.Event()
        violations = []

        def total(tx):
            return sum(tx.read(a) for a in accounts)

        def transferer(rng_seed):
            import random
            rng = random.Random(rng_seed)
            for _ in range(150):
                src, dst = rng.sample(range(4), 2)

                def body(tx):
                    amount = rng.randint(1, 10)
                    s = tx.read(accounts[src])
                    if s >= amount:
                        tx.write(accounts[src], s - amount)
                        tx.write(accounts[dst],
                                 tx.read(accounts[dst]) + amount)

                atomically(body)

        def observer():
            while not stop.is_set():
                seen = atomically(total)
                if seen != 400:
                    violations.append(seen)

        obs = threading.Thread(target=observer)
        obs.start()
        workers = [threading.Thread(target=transferer, args=(s,))
                   for s in range(3)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop.set()
        obs.join(5)
        assert violations == []
        assert atomically(total) == 400

    def test_conflicting_writers_abort_and_recover(self):
        var = TVar(0)
        barrier = threading.Barrier(4)

        def contend():
            barrier.wait(5)
            for _ in range(100):
                atomically(lambda tx: tx.write(var, tx.read(var) + 1))

        threads = [threading.Thread(target=contend) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert var.peek() == 400
        # under this much contention SOME aborts should have happened
        report = MONITOR.report()
        total_aborts = sum(p["aborts"]
                           for p in report["profiles"].values())
        assert total_aborts >= 0  # aborts possible but not guaranteed


class TestMonitor:
    def test_profiles_record_commits(self):
        var = TVar(0)
        atomically(lambda tx: tx.write(var, 1))
        profile = MONITOR.profile_for()
        assert profile.commits >= 1

    def test_storm_detection(self):
        MONITOR.storm_threshold = 3
        try:
            def always_retry(tx):
                tx.retry()

            with pytest.raises(STMError):
                atomically(always_retry, max_attempts=5)
            report = MONITOR.report()
            assert report["storms"], "storm at streak==3 not recorded"
            assert report["storms"][0]["streak"] == 3
        finally:
            MONITOR.storm_threshold = 16

    def test_conflict_attribution(self):
        MONITOR.reset()
        hot = TVar(0, name="hot-var")
        flag = []

        def body(tx):
            value = tx.read(hot)
            if not flag:
                flag.append(1)
                # simulate a concurrent commit between read and commit
                atomically_other_thread(hot)
            tx.write(hot, value + 1)

        def atomically_other_thread(var):
            thread = threading.Thread(
                target=lambda: atomically(
                    lambda tx: tx.write(var, tx.read(var) + 10)))
            thread.start()
            thread.join()

        atomically(body)
        profile = MONITOR.profile_for()
        # the first attempt aborted (read validation failed at commit)
        assert profile.aborts >= 1

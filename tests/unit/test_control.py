"""Unit tests: resume gates and the UE controller (repro.tracing.control)."""

import threading
import time

import pytest

from repro.tracing.control import ResumeCommand, ResumeGate, UEController
from repro.util.errors import TraceError
from repro.util.ids import UEId

UE = UEId(100, 1)
OTHER = UEId(100, 2)


class TestResumeGate:
    def test_release_before_await_is_not_lost(self):
        """The race the arm/await split exists for."""
        gate = ResumeGate(UE)
        gate.arm()
        gate.release(ResumeCommand(action="step"))  # client answered fast
        command = gate.await_release(timeout=1.0)
        assert command.action == "step"

    def test_park_blocks_until_release(self):
        gate = ResumeGate(UE)
        result = {}

        def parked():
            result["cmd"] = gate.park(timeout=5.0)

        thread = threading.Thread(target=parked)
        thread.start()
        assert gate.wait_parked(2.0)
        gate.release(ResumeCommand(action="next"))
        thread.join(2.0)
        assert result["cmd"].action == "next"

    def test_timeout_returns_continue(self):
        gate = ResumeGate(UE)
        start = time.monotonic()
        command = gate.park(timeout=0.05)
        assert time.monotonic() - start >= 0.04
        assert command.action == "continue"

    def test_release_without_arm_raises(self):
        gate = ResumeGate(UE)
        with pytest.raises(TraceError):
            gate.release()

    def test_double_arm_raises(self):
        gate = ResumeGate(UE)
        gate.arm()
        with pytest.raises(TraceError):
            gate.arm()
        gate.release()
        gate.await_release(timeout=1.0)

    def test_await_without_arm_raises(self):
        gate = ResumeGate(UE)
        with pytest.raises(TraceError):
            gate.await_release(timeout=0.1)

    def test_gate_reusable_across_stops(self):
        gate = ResumeGate(UE)
        for action in ("continue", "step", "next"):
            gate.arm()
            gate.release(ResumeCommand(action=action))
            assert gate.await_release(1.0).action == action

    def test_default_release_command_is_continue(self):
        gate = ResumeGate(UE)
        gate.arm()
        gate.release()
        assert gate.await_release(1.0).action == "continue"


class TestUEController:
    def test_gate_for_is_stable(self):
        controller = UEController()
        assert controller.gate_for(UE) is controller.gate_for(UE)
        assert controller.gate_for(UE) is not controller.gate_for(OTHER)

    def test_known_and_parked_ues(self):
        controller = UEController()
        controller.gate_for(UE)
        controller.gate_for(OTHER).arm()
        assert controller.known_ues() == [UE, OTHER]
        assert controller.parked_ues() == [OTHER]
        controller.gate_for(OTHER).release()
        controller.gate_for(OTHER).await_release(1.0)

    def test_suspend_consumed_once(self):
        controller = UEController()
        controller.request_suspend(UE)
        assert controller.consume_suspend(UE)
        assert not controller.consume_suspend(UE)

    def test_suspend_is_per_ue(self):
        controller = UEController()
        controller.request_suspend(UE)
        assert not controller.consume_suspend(OTHER)
        assert controller.consume_suspend(UE)

    def test_suspend_all_parks_each_ue_once(self):
        controller = UEController()
        controller.gate_for(UE)
        controller.request_suspend_all()
        assert controller.consume_suspend(UE)
        assert not controller.consume_suspend(UE)  # released UEs run free
        assert controller.consume_suspend(OTHER)  # late-arriving UEs caught
        controller.clear_suspend_all()
        assert not controller.consume_suspend(UE)

    def test_suspend_all_resets_per_sweep(self):
        controller = UEController()
        controller.request_suspend_all()
        assert controller.consume_suspend(UE)
        controller.clear_suspend_all()
        controller.request_suspend_all()
        assert controller.consume_suspend(UE)  # a NEW sweep parks again

    def test_release_unparked_raises(self):
        controller = UEController()
        controller.gate_for(UE)
        with pytest.raises(TraceError):
            controller.release(UE)

    def test_release_all_returns_count(self):
        controller = UEController()
        released = []

        def parked(ue):
            cmd = controller.gate_for(ue).park(timeout=5.0)
            released.append((ue, cmd.action))

        threads = [threading.Thread(target=parked, args=(ue,))
                   for ue in (UE, OTHER)]
        for t in threads:
            t.start()
        for ue in (UE, OTHER):
            assert controller.gate_for(ue).wait_parked(2.0)
        count = controller.release_all()
        for t in threads:
            t.join(2.0)
        assert count == 2
        assert sorted(r[0] for r in released) == [UE, OTHER]
        assert all(r[1] == "continue" for r in released)

    def test_release_all_clears_pending_suspends(self):
        controller = UEController()
        controller.request_suspend(UE)
        controller.release_all()
        assert not controller.consume_suspend(UE)

    def test_reset_after_fork_keeps_only_survivor(self):
        controller = UEController()
        controller.gate_for(UE)
        controller.gate_for(OTHER)
        controller.request_suspend(OTHER)
        survivor = UEId(200, 9)
        controller.reset_after_fork(survivor)
        assert controller.known_ues() == [survivor]
        assert not controller.consume_suspend(OTHER)

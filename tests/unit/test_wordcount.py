"""Unit tests: the word-count job (repro.mapreduce.wordcount)."""

from repro.mapreduce.wordcount import (
    map_wordcount,
    merge_counts,
    reduce_wordcount,
    tokenize,
    top_words,
)


class TestTokenize:
    def test_letters_only(self):
        assert tokenize("alpha beta42 gamma_x delta") == \
            ["alpha", "beta", "gamma", "x", "delta"]

    def test_reserved_words_dropped(self):
        tokens = tokenize("while counter remains if positive")
        assert "while" not in tokens and "if" not in tokens
        assert "counter" in tokens and "positive" in tokens

    def test_case_sensitive_tokens(self):
        assert tokenize("Total total") == ["Total", "total"]

    def test_empty_text(self):
        assert tokenize("") == []

    def test_punctuation_splits(self):
        assert tokenize("foo(bar->baz);") == ["foo", "bar", "baz"]


class TestMapReduceFunctions:
    def test_map_counts_one_document(self):
        counts = map_wordcount(("doc.txt", "spam eggs spam"))
        assert counts == {"spam": 2, "eggs": 1}

    def test_reduce_sums(self):
        assert reduce_wordcount("word", [1, 2, 3]) == 6

    def test_merge_counts_matches_reduce(self):
        docs = [("a", "x y x"), ("b", "y z"), ("c", "x")]
        merged = merge_counts(map_wordcount(d) for d in docs)
        assert merged == {"x": 3, "y": 2, "z": 1}

    def test_map_reduce_identity(self):
        """reduce over per-doc maps == count over concatenation."""
        docs = [("a", "p q"), ("b", "q r r")]
        partials = [map_wordcount(d) for d in docs]
        keys = {k for p in partials for k in p}
        reduced = {k: reduce_wordcount(k, [p.get(k, 0) for p in partials])
                   for k in keys}
        whole = map_wordcount(("all", "p q q r r"))
        assert reduced == whole


class TestTopWords:
    def test_sorted_by_count_then_alpha(self):
        freq = {"bb": 2, "aa": 2, "cc": 5}
        assert top_words(freq, 3) == [("cc", 5), ("aa", 2), ("bb", 2)]

    def test_limit(self):
        freq = {c: 1 for c in "abcdefgh"}
        assert len(top_words(freq, 3)) == 3

    def test_empty(self):
        assert top_words({}, 5) == []

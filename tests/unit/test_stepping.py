"""Unit tests: stepping state machines (repro.tracing.stepping).

Frames are identity tokens only, so plain objects stand in.
"""

from repro.tracing.stepping import StepMode, StepState


class FakeFrame:
    def __init__(self, lineno=1):
        self.f_lineno = lineno


class TestContinueMode:
    def test_default_is_continue(self):
        state = StepState()
        assert state.mode is StepMode.CONTINUE
        assert state.is_running_free

    def test_never_stops(self):
        state = StepState()
        frame = FakeFrame()
        assert not state.should_stop_on_line(frame)
        assert not state.should_stop_on_call(frame)
        assert not state.should_stop_on_return(frame)

    def test_no_call_tracing_wanted(self):
        """The fast path: CONTINUE must not request local tracing."""
        assert not StepState().wants_call_tracing(FakeFrame())


class TestStepMode:
    def test_stops_on_any_line(self):
        state = StepState()
        state.set_step()
        assert state.should_stop_on_line(FakeFrame())
        assert state.should_stop_on_line(FakeFrame())

    def test_stops_on_call(self):
        state = StepState()
        state.set_step()
        assert state.should_stop_on_call(FakeFrame())

    def test_stops_on_return(self):
        state = StepState()
        state.set_step()
        assert state.should_stop_on_return(FakeFrame())

    def test_wants_tracing(self):
        state = StepState()
        state.set_step()
        assert state.wants_call_tracing(FakeFrame())


class TestNextMode:
    def test_stops_only_in_own_frame(self):
        state = StepState()
        mine, other = FakeFrame(), FakeFrame()
        state.set_next(mine)
        assert state.should_stop_on_line(mine)
        assert not state.should_stop_on_line(other)

    def test_does_not_stop_on_call(self):
        state = StepState()
        frame = FakeFrame()
        state.set_next(frame)
        assert not state.should_stop_on_call(FakeFrame())

    def test_frame_return_degrades_to_step(self):
        """When the stop frame returns, stop at the caller's next line."""
        state = StepState()
        frame = FakeFrame()
        state.set_next(frame)
        assert not state.should_stop_on_return(frame)
        assert state.mode is StepMode.STEP

    def test_other_frame_return_ignored(self):
        state = StepState()
        frame = FakeFrame()
        state.set_next(frame)
        state.should_stop_on_return(FakeFrame())
        assert state.mode is StepMode.NEXT


class TestReturnMode:
    def test_runs_past_lines_in_own_frame(self):
        state = StepState()
        frame = FakeFrame()
        state.set_return(frame)
        assert not state.should_stop_on_line(frame)

    def test_converts_on_own_return(self):
        state = StepState()
        frame = FakeFrame()
        state.set_return(frame)
        state.should_stop_on_return(frame)
        assert state.mode is StepMode.STEP


class TestUntilMode:
    def test_stops_past_target_line_same_frame(self):
        state = StepState()
        frame = FakeFrame(lineno=10)
        state.set_until(frame)  # until past line 10
        frame.f_lineno = 10
        assert not state.should_stop_on_line(frame)
        frame.f_lineno = 9  # loop back
        assert not state.should_stop_on_line(frame)
        frame.f_lineno = 11
        assert state.should_stop_on_line(frame)

    def test_explicit_line(self):
        state = StepState()
        frame = FakeFrame(lineno=5)
        state.set_until(frame, line=20)
        frame.f_lineno = 15
        assert not state.should_stop_on_line(frame)
        frame.f_lineno = 21
        assert state.should_stop_on_line(frame)

    def test_ignores_other_frames(self):
        state = StepState()
        frame = FakeFrame(lineno=5)
        state.set_until(frame)
        assert not state.should_stop_on_line(FakeFrame(lineno=100))


class TestSuspendMode:
    def test_stops_everywhere(self):
        state = StepState()
        state.set_suspend()
        assert state.should_stop_on_line(FakeFrame())
        assert state.should_stop_on_call(FakeFrame())
        assert state.should_stop_on_return(FakeFrame())


class TestNotifyStopped:
    def test_resets_to_continue(self):
        state = StepState()
        frame = FakeFrame()
        state.set_next(frame)
        state.notify_stopped()
        assert state.mode is StepMode.CONTINUE
        assert state.stop_frame is None

    def test_full_cycle_step_then_continue(self):
        state = StepState()
        state.set_step()
        assert state.should_stop_on_line(FakeFrame())
        state.notify_stopped()
        assert not state.should_stop_on_line(FakeFrame())

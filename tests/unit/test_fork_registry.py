"""Unit tests: ordered fork-handler registry (repro.forkhooks.registry).

The ordering discipline is POSIX pthread_atfork's: prepare runs in
reverse registration order, parent/child in registration order
(paper section 5.2 relies on composing with foreign handlers).
"""

import errno
import threading

import pytest

from repro.forkhooks.registry import (
    ForkHandlerRegistry,
    HandlerSet,
    run_around_fork,
)
from repro.forkhooks.syncobjects import SyncObjectRegistry, manage_lock
from repro.testkit.faults import Fault, Schedule, armed, registry as faults
from repro.util.errors import ForkHookError, SyncObjectError


@pytest.fixture
def registry():
    return ForkHandlerRegistry()


class TestRegistration:
    def test_register_and_labels(self, registry):
        registry.register("a", prepare=lambda: None)
        registry.register("b", child=lambda: None)
        assert registry.labels == ["a", "b"]

    def test_empty_handler_set_rejected(self):
        with pytest.raises(ForkHookError):
            HandlerSet(label="empty")

    def test_duplicate_label_rejected(self, registry):
        registry.register("dup", prepare=lambda: None)
        with pytest.raises(ForkHookError):
            registry.register("dup", parent=lambda: None)

    def test_unregister(self, registry):
        registry.register("x", prepare=lambda: None)
        registry.unregister("x")
        assert registry.labels == []

    def test_unregister_unknown_raises(self, registry):
        with pytest.raises(ForkHookError):
            registry.unregister("ghost")

    def test_clear(self, registry):
        registry.register("x", prepare=lambda: None)
        registry.clear()
        assert registry.labels == []


class TestPhaseOrdering:
    def test_prepare_reverse_parent_child_forward(self, registry):
        calls = []
        for name in ("first", "second", "third"):
            registry.register(
                name,
                prepare=lambda n=name: calls.append(f"prep:{n}"),
                parent=lambda n=name: calls.append(f"par:{n}"),
                child=lambda n=name: calls.append(f"chi:{n}"))
        registry.run_prepare()
        assert calls == ["prep:third", "prep:second", "prep:first"]
        calls.clear()
        registry.run_parent()
        assert calls == ["par:first", "par:second", "par:third"]
        calls.clear()
        registry.run_child()
        assert calls == ["chi:first", "chi:second", "chi:third"]

    def test_missing_phases_skipped(self, registry):
        calls = []
        registry.register("only-child", child=lambda: calls.append("c"))
        registry.run_prepare()
        registry.run_parent()
        registry.run_child()
        assert calls == ["c"]


class TestPrepareFailure:
    def test_failure_unwinds_already_prepared(self, registry):
        calls = []
        registry.register("inner",
                          prepare=lambda: calls.append("prep:inner"),
                          parent=lambda: calls.append("undo:inner"))

        def bad_prepare():
            calls.append("prep:bad")
            raise RuntimeError("no fork for you")

        # registered later => runs FIRST in prepare; 'inner' then fails?
        # No: we want bad to fail after inner prepared, so bad must run
        # second => register bad first.
        registry.clear()
        calls.clear()
        registry.register("bad", prepare=bad_prepare,
                          parent=lambda: calls.append("undo:bad"))
        registry.register("inner",
                          prepare=lambda: calls.append("prep:inner"),
                          parent=lambda: calls.append("undo:inner"))
        with pytest.raises(ForkHookError):
            registry.run_prepare()
        # inner prepared (reverse order: inner first), bad failed, inner
        # unwound via its parent callback.
        assert calls == ["prep:inner", "prep:bad", "undo:inner"]

    def test_unwind_failure_recorded_not_raised(self, registry):
        def bad_undo():
            raise ValueError("undo broke")

        # prepare runs in reverse registration order, so 'failing' must be
        # registered FIRST to run second — after 'a' already prepared.
        registry.register("failing",
                          prepare=lambda: (_ for _ in ()).throw(
                              RuntimeError("prep fails")))
        registry.register("a", prepare=lambda: None, parent=bad_undo)
        with pytest.raises(ForkHookError):
            registry.run_prepare()
        assert any(f.phase == "unwind" for f in registry.failures)


class TestContainedFailures:
    def test_parent_failure_recorded_others_run(self, registry):
        calls = []
        registry.register("bad", parent=lambda: 1 / 0)
        registry.register("good", parent=lambda: calls.append("ok"))
        registry.run_parent()
        assert calls == ["ok"]
        failures = registry.failures
        assert len(failures) == 1
        assert failures[0].label == "bad"
        assert failures[0].phase == "parent"
        assert isinstance(failures[0].exception, ZeroDivisionError)

    def test_child_failure_recorded_others_run(self, registry):
        calls = []
        registry.register("bad", child=lambda: 1 / 0)
        registry.register("good", child=lambda: calls.append("ok"))
        registry.run_child()
        assert calls == ["ok"]
        assert registry.failures[0].phase == "child"

    def test_clear_failures(self, registry):
        registry.register("bad", parent=lambda: 1 / 0)
        registry.run_parent()
        registry.clear_failures()
        assert registry.failures == []


class TestRunAroundFork:
    def test_parent_path(self, registry):
        calls = []
        registry.register("h", prepare=lambda: calls.append("A"),
                          parent=lambda: calls.append("B"),
                          child=lambda: calls.append("C"))
        pid, is_child = run_around_fork(registry, lambda: 1234)
        assert (pid, is_child) == (1234, False)
        assert calls == ["A", "B"]

    def test_child_path(self, registry):
        calls = []
        registry.register("h", prepare=lambda: calls.append("A"),
                          parent=lambda: calls.append("B"),
                          child=lambda: calls.append("C"))
        pid, is_child = run_around_fork(registry, lambda: 0)
        assert (pid, is_child) == (0, True)
        assert calls == ["A", "C"]

    def test_fork_failure_releases_prepare(self, registry):
        calls = []
        registry.register("h", prepare=lambda: calls.append("A"),
                          parent=lambda: calls.append("B"))

        def failing_fork():
            raise OSError("EAGAIN")

        with pytest.raises(OSError):
            run_around_fork(registry, failing_fork)
        assert calls == ["A", "B"]


class TestInjectedFailures:
    """Error paths driven through the testkit's fault points.

    These pin the contract the stress tier leans on: a fork that fails at
    the worst moment (between prepare and fork(2)) must leave the handler
    registry, and any sync-object sweep it brackets, exactly as found.
    """

    @pytest.fixture(autouse=True)
    def clean_faults(self):
        faults().reset()
        yield
        faults().reset()

    def test_injected_fork_failure_unwinds_prepare(self, registry):
        calls = []
        registry.register("h", prepare=lambda: calls.append("prep"),
                          parent=lambda: calls.append("par"),
                          child=lambda: calls.append("chi"))
        with armed("fork.os_fork", Fault.os_error(errno.EAGAIN)):
            with pytest.raises(OSError) as exc_info:
                run_around_fork(registry, lambda: 1234)
        assert exc_info.value.errno == errno.EAGAIN
        # prepare ran, the injected failure aborted the fork, and the
        # parent phase (prepare's undo) ran — never the child phase.
        assert calls == ["prep", "par"]
        assert registry.labels == ["h"]
        assert registry.failures == []

    def test_injected_eintr_at_fork_point_propagates(self, registry):
        calls = []
        registry.register("h", prepare=lambda: calls.append("prep"),
                          parent=lambda: calls.append("par"))
        with armed("fork.os_fork", Fault.eintr()):
            with pytest.raises(InterruptedError):
                run_around_fork(registry, lambda: 1234)
        assert calls == ["prep", "par"]

    def test_scheduled_fork_failures_recover(self, registry):
        """Fail forks 1 and 3 of 4; the survivors must be untouched."""
        depth = {"n": 0}

        def prep():
            depth["n"] += 1

        def par():
            depth["n"] -= 1

        registry.register("balance", prepare=prep, parent=par)
        outcomes = []
        with armed("fork.os_fork", Fault.os_error(errno.EAGAIN),
                   Schedule.on_hits(1, 3)):
            for _ in range(4):
                try:
                    pid, is_child = run_around_fork(registry, lambda: 4321)
                    outcomes.append(pid)
                except OSError:
                    outcomes.append("failed")
                # Whatever happened, prepare must be fully undone.
                assert depth["n"] == 0
            assert faults().stats("fork.os_fork") == (4, 2)
        assert outcomes == ["failed", 4321, "failed", 4321]

    def test_prepare_fault_leaves_sync_sweep_unapplied(self, registry):
        """A prepare handler raising (here: via an injected fault) after
        the sync-object sweep acquired everything must see the sweep
        fully released — not half-applied."""
        sync = SyncObjectRegistry(acquire_timeout=1.0)
        lock_a, lock_b = threading.Lock(), threading.Lock()
        manage_lock(sync, lock_a, name="a")
        manage_lock(sync, lock_b, name="b")

        def faulty_prepare():
            from repro.testkit.faults import maybe_fault
            maybe_fault("test.prepare")

        # Registration order matters: prepare runs in REVERSE order, so
        # the sweep (registered last) prepares first, then the faulty
        # handler fires and must trigger the sweep's parent-side release.
        registry.register("faulty", prepare=faulty_prepare)
        registry.register("sweep",
                          prepare=lambda: sync.take_ownership(),
                          parent=lambda: sync.release_ownership(),
                          child=lambda: sync.reinit_after_fork())
        with armed("test.prepare", Fault.os_error(errno.EIO)):
            with pytest.raises(ForkHookError):
                registry.run_prepare()
        assert not sync.holding
        assert not lock_a.locked() and not lock_b.locked()
        # The registry itself is intact and a clean retry succeeds.
        assert registry.labels == ["faulty", "sweep"]
        registry.run_prepare()
        assert sync.holding and lock_a.locked() and lock_b.locked()
        registry.run_parent()
        assert not sync.holding

    def test_sweep_acquire_fault_unwinds_partial_acquisition(self):
        """If acquiring sync object k fails, objects 1..k-1 are released
        before the error propagates (take_ownership's own unwind)."""
        sync = SyncObjectRegistry(acquire_timeout=0.1)
        lock_a = threading.Lock()
        manage_lock(sync, lock_a, name="a")
        lock_b = threading.Lock()
        lock_b.acquire()  # a foreign holder: acquisition will time out
        manage_lock(sync, lock_b, name="b")
        with pytest.raises(SyncObjectError):
            sync.take_ownership()
        assert not lock_a.locked()
        assert not sync.holding
        lock_b.release()

"""Unit tests: ordered fork-handler registry (repro.forkhooks.registry).

The ordering discipline is POSIX pthread_atfork's: prepare runs in
reverse registration order, parent/child in registration order
(paper section 5.2 relies on composing with foreign handlers).
"""

import pytest

from repro.forkhooks.registry import (
    ForkHandlerRegistry,
    HandlerSet,
    run_around_fork,
)
from repro.util.errors import ForkHookError


@pytest.fixture
def registry():
    return ForkHandlerRegistry()


class TestRegistration:
    def test_register_and_labels(self, registry):
        registry.register("a", prepare=lambda: None)
        registry.register("b", child=lambda: None)
        assert registry.labels == ["a", "b"]

    def test_empty_handler_set_rejected(self):
        with pytest.raises(ForkHookError):
            HandlerSet(label="empty")

    def test_duplicate_label_rejected(self, registry):
        registry.register("dup", prepare=lambda: None)
        with pytest.raises(ForkHookError):
            registry.register("dup", parent=lambda: None)

    def test_unregister(self, registry):
        registry.register("x", prepare=lambda: None)
        registry.unregister("x")
        assert registry.labels == []

    def test_unregister_unknown_raises(self, registry):
        with pytest.raises(ForkHookError):
            registry.unregister("ghost")

    def test_clear(self, registry):
        registry.register("x", prepare=lambda: None)
        registry.clear()
        assert registry.labels == []


class TestPhaseOrdering:
    def test_prepare_reverse_parent_child_forward(self, registry):
        calls = []
        for name in ("first", "second", "third"):
            registry.register(
                name,
                prepare=lambda n=name: calls.append(f"prep:{n}"),
                parent=lambda n=name: calls.append(f"par:{n}"),
                child=lambda n=name: calls.append(f"chi:{n}"))
        registry.run_prepare()
        assert calls == ["prep:third", "prep:second", "prep:first"]
        calls.clear()
        registry.run_parent()
        assert calls == ["par:first", "par:second", "par:third"]
        calls.clear()
        registry.run_child()
        assert calls == ["chi:first", "chi:second", "chi:third"]

    def test_missing_phases_skipped(self, registry):
        calls = []
        registry.register("only-child", child=lambda: calls.append("c"))
        registry.run_prepare()
        registry.run_parent()
        registry.run_child()
        assert calls == ["c"]


class TestPrepareFailure:
    def test_failure_unwinds_already_prepared(self, registry):
        calls = []
        registry.register("inner",
                          prepare=lambda: calls.append("prep:inner"),
                          parent=lambda: calls.append("undo:inner"))

        def bad_prepare():
            calls.append("prep:bad")
            raise RuntimeError("no fork for you")

        # registered later => runs FIRST in prepare; 'inner' then fails?
        # No: we want bad to fail after inner prepared, so bad must run
        # second => register bad first.
        registry.clear()
        calls.clear()
        registry.register("bad", prepare=bad_prepare,
                          parent=lambda: calls.append("undo:bad"))
        registry.register("inner",
                          prepare=lambda: calls.append("prep:inner"),
                          parent=lambda: calls.append("undo:inner"))
        with pytest.raises(ForkHookError):
            registry.run_prepare()
        # inner prepared (reverse order: inner first), bad failed, inner
        # unwound via its parent callback.
        assert calls == ["prep:inner", "prep:bad", "undo:inner"]

    def test_unwind_failure_recorded_not_raised(self, registry):
        def bad_undo():
            raise ValueError("undo broke")

        # prepare runs in reverse registration order, so 'failing' must be
        # registered FIRST to run second — after 'a' already prepared.
        registry.register("failing",
                          prepare=lambda: (_ for _ in ()).throw(
                              RuntimeError("prep fails")))
        registry.register("a", prepare=lambda: None, parent=bad_undo)
        with pytest.raises(ForkHookError):
            registry.run_prepare()
        assert any(f.phase == "unwind" for f in registry.failures)


class TestContainedFailures:
    def test_parent_failure_recorded_others_run(self, registry):
        calls = []
        registry.register("bad", parent=lambda: 1 / 0)
        registry.register("good", parent=lambda: calls.append("ok"))
        registry.run_parent()
        assert calls == ["ok"]
        failures = registry.failures
        assert len(failures) == 1
        assert failures[0].label == "bad"
        assert failures[0].phase == "parent"
        assert isinstance(failures[0].exception, ZeroDivisionError)

    def test_child_failure_recorded_others_run(self, registry):
        calls = []
        registry.register("bad", child=lambda: 1 / 0)
        registry.register("good", child=lambda: calls.append("ok"))
        registry.run_child()
        assert calls == ["ok"]
        assert registry.failures[0].phase == "child"

    def test_clear_failures(self, registry):
        registry.register("bad", parent=lambda: 1 / 0)
        registry.run_parent()
        registry.clear_failures()
        assert registry.failures == []


class TestRunAroundFork:
    def test_parent_path(self, registry):
        calls = []
        registry.register("h", prepare=lambda: calls.append("A"),
                          parent=lambda: calls.append("B"),
                          child=lambda: calls.append("C"))
        pid, is_child = run_around_fork(registry, lambda: 1234)
        assert (pid, is_child) == (1234, False)
        assert calls == ["A", "B"]

    def test_child_path(self, registry):
        calls = []
        registry.register("h", prepare=lambda: calls.append("A"),
                          parent=lambda: calls.append("B"),
                          child=lambda: calls.append("C"))
        pid, is_child = run_around_fork(registry, lambda: 0)
        assert (pid, is_child) == (0, True)
        assert calls == ["A", "C"]

    def test_fork_failure_releases_prepare(self, registry):
        calls = []
        registry.register("h", prepare=lambda: calls.append("A"),
                          parent=lambda: calls.append("B"))

        def failing_fork():
            raise OSError("EAGAIN")

        with pytest.raises(OSError):
            run_around_fork(registry, failing_fork)
        assert calls == ["A", "B"]

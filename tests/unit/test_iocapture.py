"""Unit tests: debuggee I/O capture (repro.server.iocapture)."""

import io
import sys

import pytest

from repro.server.iocapture import InputFeed, OutputCapture, _TeeStream


@pytest.fixture
def capture():
    cap = OutputCapture()
    yield cap
    cap.uninstall()


class TestTee:
    def test_write_reaches_real_stream_and_buffer(self):
        real = io.StringIO()
        cap = OutputCapture()
        tee = _TeeStream(real, "stdout", cap)
        tee.write("hello ")
        tee.write("world")
        assert real.getvalue() == "hello world"
        assert cap.snapshot() == "hello world"

    def test_writelines(self):
        real = io.StringIO()
        cap = OutputCapture()
        tee = _TeeStream(real, "stdout", cap)
        tee.writelines(["a\n", "b\n"])
        assert cap.snapshot() == "a\nb\n"

    def test_stream_filter(self):
        cap = OutputCapture()
        out = _TeeStream(io.StringIO(), "stdout", cap)
        err = _TeeStream(io.StringIO(), "stderr", cap)
        out.write("to out")
        err.write("to err")
        assert cap.snapshot("stdout") == "to out"
        assert cap.snapshot("stderr") == "to err"
        assert cap.snapshot() == "to outto err"

    def test_empty_write_not_recorded(self):
        cap = OutputCapture()
        tee = _TeeStream(io.StringIO(), "stdout", cap)
        tee.write("")
        assert cap.snapshot() == ""

    def test_buffer_bounded(self):
        cap = OutputCapture(max_chunks=5)
        tee = _TeeStream(io.StringIO(), "stdout", cap)
        for i in range(20):
            tee.write(f"[{i}]")
        text = cap.snapshot()
        assert "[19]" in text and "[0]" not in text

    def test_callback_invoked(self):
        events = []
        cap = OutputCapture(on_output=lambda s, t: events.append((s, t)))
        tee = _TeeStream(io.StringIO(), "stderr", cap)
        tee.write("oops")
        assert events == [("stderr", "oops")]

    def test_callback_failure_contained(self):
        cap = OutputCapture(on_output=lambda s, t: 1 / 0)
        tee = _TeeStream(io.StringIO(), "stdout", cap)
        tee.write("still works")
        assert cap.snapshot() == "still works"


class TestInstall:
    def test_install_swaps_sys_streams(self, capture):
        original = sys.stdout
        capture.install()
        assert sys.stdout is not original
        print("captured line")
        assert "captured line" in capture.snapshot("stdout")
        capture.uninstall()
        assert sys.stdout is original

    def test_install_idempotent(self, capture):
        capture.install()
        wrapped = sys.stdout
        capture.install()
        assert sys.stdout is wrapped

    def test_context_manager(self):
        original = sys.stdout
        with OutputCapture() as cap:
            print("inside")
            assert "inside" in cap.snapshot()
        assert sys.stdout is original

    def test_reset_after_fork_clears(self, capture):
        capture.install()
        print("parent output")
        capture.reset_after_fork()
        assert capture.snapshot() == ""

    def test_clear(self, capture):
        capture.install()
        print("x")
        capture.clear()
        assert capture.snapshot() == ""


class TestInputFeed:
    def test_feed_and_read(self):
        feed = InputFeed()
        feed.install()
        try:
            feed.feed("first line\n")
            assert sys.stdin.readline() == "first line\n"
        finally:
            feed.uninstall()

    def test_input_builtin(self):
        feed = InputFeed()
        feed.install()
        try:
            feed.feed("typed answer\n")
            assert input() == "typed answer"
        finally:
            feed.uninstall()

    def test_eof_after_close(self):
        feed = InputFeed()
        feed.install()
        try:
            feed.feed("only\n")
            feed.close_input()
            assert sys.stdin.readline() == "only\n"
            assert sys.stdin.readline() == ""  # EOF
        finally:
            feed.uninstall()

    def test_feed_without_install_rejected(self):
        with pytest.raises(ValueError):
            InputFeed().feed("x")

    def test_uninstall_restores_stdin(self):
        original = sys.stdin
        feed = InputFeed()
        feed.install()
        feed.uninstall()
        assert sys.stdin is original

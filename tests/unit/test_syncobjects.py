"""Unit tests: sync-object registry + pre-fork ownership sweep."""

import threading
import time

import pytest

from repro.forkhooks.syncobjects import (
    ManagedSyncObject,
    SyncObjectRegistry,
    manage_lock,
)
from repro.util.errors import SyncObjectError


def managed(name, log):
    """A fake sync object recording its protocol calls."""
    return ManagedSyncObject(
        name=name,
        acquire=lambda timeout: (log.append(f"acq:{name}") or True),
        release=lambda: log.append(f"rel:{name}"),
        reinit=lambda: log.append(f"init:{name}"))


class TestRegistration:
    def test_register_and_len(self):
        registry = SyncObjectRegistry()
        lock = threading.Lock()
        manage_lock(registry, lock)
        assert len(registry) == 1

    def test_weakref_owner_drops_collected_objects(self):
        registry = SyncObjectRegistry()

        class Owner:
            pass

        owner = Owner()
        manage_lock(registry, threading.Lock(), owner=owner)
        assert len(registry) == 1
        del owner
        import gc
        gc.collect()
        assert len(registry) == 0
        assert registry.live_objects() == []

    def test_plain_lock_is_strong_until_unregistered(self):
        registry = SyncObjectRegistry()
        token = manage_lock(registry, threading.Lock())
        import gc
        gc.collect()
        assert len(registry) == 1  # _thread.lock is not weak-referenceable
        registry.unregister(token)
        assert len(registry) == 0

    def test_unregister(self):
        registry = SyncObjectRegistry()
        lock = threading.Lock()
        token = manage_lock(registry, lock)
        registry.unregister(token)
        assert len(registry) == 0

    def test_global_order_is_registration_order(self):
        registry = SyncObjectRegistry()
        log = []
        owners = [object() for _ in range(3)]
        for i, owner in enumerate(owners):
            registry.register(owner, managed(f"m{i}", log))
        names = [m.name for m in registry.live_objects()]
        assert names == ["m0", "m1", "m2"]


class TestOwnershipSweep:
    def test_take_then_release(self):
        registry = SyncObjectRegistry()
        log = []
        owners = [object(), object()]
        registry.register(owners[0], managed("a", log))
        registry.register(owners[1], managed("b", log))
        assert registry.take_ownership() == 2
        assert registry.holding
        assert log == ["acq:a", "acq:b"]
        assert registry.release_ownership() == 2
        assert not registry.holding
        # release happens in reverse acquisition order
        assert log == ["acq:a", "acq:b", "rel:b", "rel:a"]

    def test_double_take_rejected(self):
        registry = SyncObjectRegistry()
        owner = object()
        registry.register(owner, ManagedSyncObject(
            "x", acquire=lambda t: True, release=lambda: None,
            reinit=lambda: None))
        registry.take_ownership()
        with pytest.raises(SyncObjectError):
            registry.take_ownership()
        registry.release_ownership()

    def test_acquire_timeout_unwinds(self):
        registry = SyncObjectRegistry(acquire_timeout=0.05)
        log = []
        good_owner, stuck_owner = object(), object()
        registry.register(good_owner, managed("good", log))
        registry.register(stuck_owner, ManagedSyncObject(
            "stuck", acquire=lambda t: False, release=lambda: None,
            reinit=lambda: None))
        with pytest.raises(SyncObjectError, match="stuck"):
            registry.take_ownership()
        # the successfully acquired object was released on unwind
        assert log == ["acq:good", "rel:good"]
        assert not registry.holding

    def test_acquire_exception_unwinds(self):
        registry = SyncObjectRegistry()
        log = []
        registry.register(object(), managed("ok", log))

        def explode(timeout):
            raise RuntimeError("broken lock")

        registry.register(object(), ManagedSyncObject(
            "boom", acquire=explode, release=lambda: None,
            reinit=lambda: None))
        with pytest.raises(SyncObjectError):
            registry.take_ownership()
        assert "rel:ok" in log

    def test_real_lock_held_by_other_thread_blocks_then_times_out(self):
        registry = SyncObjectRegistry(acquire_timeout=0.1)
        lock = threading.Lock()
        manage_lock(registry, lock)
        lock.acquire()  # simulate another thread holding it at fork time
        started = time.monotonic()
        with pytest.raises(SyncObjectError):
            registry.take_ownership()
        assert time.monotonic() - started >= 0.09
        lock.release()

    def test_sweep_actually_holds_real_lock(self):
        registry = SyncObjectRegistry()
        lock = threading.Lock()
        manage_lock(registry, lock)
        registry.take_ownership()
        assert lock.locked()
        registry.release_ownership()
        assert not lock.locked()


class TestChildReinit:
    def test_reinit_runs_for_all_live(self):
        registry = SyncObjectRegistry()
        log = []
        owners = [object(), object()]
        for i, owner in enumerate(owners):
            registry.register(owner, managed(f"m{i}", log))
        registry.take_ownership()
        count = registry.reinit_after_fork()
        assert count == 2
        assert "init:m0" in log and "init:m1" in log
        assert not registry.holding

    def test_reinit_failure_contained(self):
        registry = SyncObjectRegistry()
        owner = object()
        registry.register(owner, ManagedSyncObject(
            "bad", acquire=lambda t: True, release=lambda: None,
            reinit=lambda: 1 / 0))
        good_owner = object()
        log = []
        registry.register(good_owner, managed("good", log))
        count = registry.reinit_after_fork()
        assert count == 1  # the good one
        assert "init:good" in log

    def test_manage_lock_reinit_force_releases(self):
        registry = SyncObjectRegistry()
        lock = threading.Lock()
        manage_lock(registry, lock)
        registry.take_ownership()  # lock now held (as at fork time)
        registry.reinit_after_fork()
        assert not lock.locked()  # child sees a usable lock

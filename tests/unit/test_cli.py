"""Unit tests: CLI argument handling and the corpus subcommand."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "prog.py"])
        assert args.program == "prog.py"
        assert args.args == []
        assert not args.disturb

    def test_run_passes_remainder(self):
        args = build_parser().parse_args(
            ["run", "prog.py", "--input", "x.txt"])
        assert args.args == ["--input", "x.txt"]

    def test_run_flags_before_program(self):
        # argparse.REMAINDER: everything after PROGRAM belongs to the
        # debuggee, so dionea's own flags go before it.
        args = build_parser().parse_args(
            ["run", "--disturb", "--wait-client", "--park-timeout", "5",
             "p.py"])
        assert args.disturb and args.wait_client
        assert args.park_timeout == 5.0

    def test_flags_after_program_belong_to_debuggee(self):
        args = build_parser().parse_args(["run", "p.py", "--disturb"])
        assert not args.disturb
        assert args.args == ["--disturb"]

    def test_shell_options(self):
        args = build_parser().parse_args(
            ["shell", "--connect", "localhost:4000", "-c", "threads"])
        assert args.connect == "localhost:4000"
        assert args.command == ["threads"]

    def test_corpus_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["corpus", "tiny"])

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCorpusCommand:
    def test_writes_files(self, tmp_path, capsys):
        code = main(["corpus", "tiny", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote 6 files" in out
        assert os.path.isdir(tmp_path / "tiny")


class TestRunCommand:
    def test_runs_program_under_debugger(self, tmp_path, capsys):
        program = tmp_path / "prog.py"
        program.write_text("import sys\nprint('ran with', len(sys.argv))\n")
        portfile = tmp_path / "ports"
        code = main(["run", "--portfile", str(portfile),
                     "--park-timeout", "1", str(program)])
        assert code == 0
        captured = capsys.readouterr()
        assert "ran with 1" in captured.out
        assert "dionea: serving pid" in captured.err

    def test_exit_code_propagates(self, tmp_path):
        program = tmp_path / "prog.py"
        program.write_text("import sys\nsys.exit(3)\n")
        code = main(["run", "--portfile", str(tmp_path / "pf"),
                     str(program)])
        assert code == 3

    def test_program_argv_restored(self, tmp_path):
        import sys
        before = list(sys.argv)
        program = tmp_path / "prog.py"
        program.write_text("pass\n")
        main(["run", "--portfile", str(tmp_path / "pf"),
              str(program), "arg1"])
        assert sys.argv == before

"""Unit tests: the augmented fork (repro.forkhooks.augment).

These fork real processes (children exit immediately via os._exit), so
they double as the paper's Listing 4 in miniature: alias installed,
handlers bracket the fork, alias removed.
"""

import os

import pytest

from repro.forkhooks.augment import ForkPatcher, active_patcher
from repro.forkhooks.registry import ForkHandlerRegistry
from repro.forkhooks.resilience import run_with_deadline
from repro.util.errors import ForkHookError


@pytest.fixture
def registry():
    return ForkHandlerRegistry()


def reap(pid):
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


class TestInstallUninstall:
    def test_install_replaces_os_fork(self, registry):
        original = os.fork
        patcher = ForkPatcher(registry)
        patcher.install()
        try:
            assert os.fork is not original
            assert active_patcher() is patcher
        finally:
            patcher.uninstall()
        assert os.fork is original
        assert active_patcher() is None

    def test_double_install_rejected(self, registry):
        patcher = ForkPatcher(registry)
        with patcher:
            with pytest.raises(ForkHookError):
                patcher.install()

    def test_two_patchers_rejected(self, registry):
        first = ForkPatcher(registry)
        second = ForkPatcher(ForkHandlerRegistry())
        with first:
            with pytest.raises(ForkHookError):
                second.install()

    def test_uninstall_without_install_is_noop(self, registry):
        ForkPatcher(registry).uninstall()  # no raise

    def test_foreign_repatch_detected(self, registry):
        patcher = ForkPatcher(registry)
        patcher.install()
        saved = os.fork
        os.fork = lambda: 0  # someone else patches over us
        try:
            with pytest.raises(ForkHookError):
                patcher.uninstall()
        finally:
            os.fork = saved
            patcher.uninstall()

    def test_unknown_backend_rejected(self, registry):
        with pytest.raises(ForkHookError):
            ForkPatcher(registry, backend="magic")

    def test_uninstall_is_idempotent(self, registry):
        original = os.fork
        patcher = ForkPatcher(registry)
        patcher.install()
        patcher.uninstall()
        patcher.uninstall()  # second uninstall: silent no-op
        assert os.fork is original
        assert active_patcher() is None

    def test_reinstall_after_uninstall(self, registry):
        original = os.fork
        patcher = ForkPatcher(registry)
        for _ in range(3):
            patcher.install()
            assert patcher.installed
            assert os.fork is not original
            patcher.uninstall()
            assert not patcher.installed
            assert os.fork is original

    def test_install_cycle_leaves_no_patcher_behind(self, registry):
        with ForkPatcher(registry):
            pass
        second = ForkPatcher(ForkHandlerRegistry())
        with second:  # the slot was freed; a new patcher may claim it
            assert active_patcher() is second
        assert active_patcher() is None


@pytest.mark.forks
class TestAliasBackendForks:
    def test_handlers_bracket_real_fork(self, registry):
        events = []
        registry.register("t",
                          prepare=lambda: events.append("prepare"),
                          parent=lambda: events.append("parent"),
                          child=lambda: os._exit(42))
        with ForkPatcher(registry):
            pid = os.fork()
            # we only ever get here in the parent: the child handler exits
            assert pid > 0
            assert reap(pid) == 42
        assert events == ["prepare", "parent"]

    def test_child_pid_callback(self, registry):
        seen = []
        patcher = ForkPatcher(registry)
        patcher.on_child_forked = seen.append
        with patcher:
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            reap(pid)
        assert seen == [pid]

    def test_prepare_failure_aborts_fork(self, registry):
        registry.register("veto", prepare=lambda: 1 / 0)
        forked = []
        with ForkPatcher(registry):
            with pytest.raises(ForkHookError):
                pid = os.fork()
                forked.append(pid)
        assert forked == []  # fork never happened

    def test_fork_still_works_after_uninstall(self, registry):
        with ForkPatcher(registry):
            pass
        pid = os.fork()
        if pid == 0:
            os._exit(7)
        assert reap(pid) == 7

    def test_callback_failure_does_not_break_fork(self, registry):
        patcher = ForkPatcher(registry)
        patcher.on_child_forked = lambda pid: 1 / 0
        with patcher:
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            assert reap(pid) == 0


@pytest.mark.forks
class TestReentrancyGuard:
    """fork() from inside a fork handler gets a bare fork, not the
    bracket — re-running prepare under its own held locks would
    deadlock.  Two paths must be covered: a handler running inline on
    the forking thread (thread-local depth), and one running on the
    resilience sandbox thread (handler-context flag)."""

    def test_inline_handler_fork_bypasses_bracket(self, registry):
        phases = []

        def forking_prepare():
            phases.append("prepare")
            inner = os.fork()  # routed to the patched alias
            if inner == 0:
                os._exit(11)
            assert reap(inner) == 11

        registry.register("nested", prepare=forking_prepare,
                          parent=lambda: phases.append("parent"))
        with ForkPatcher(registry):
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            assert reap(pid) == 0
        # one bracket only: the inner fork must not have re-run prepare
        assert phases == ["prepare", "parent"]

    def test_sandboxed_handler_fork_bypasses_bracket(self, registry):
        phases = []

        def forking_prepare():
            phases.append("prepare")
            inner = os.fork()
            if inner == 0:
                os._exit(12)
            assert reap(inner) == 12

        registry.register("t", prepare=lambda: phases.append("prepare"),
                          parent=lambda: phases.append("parent"))
        with ForkPatcher(registry):
            # run the forking handler the way the registry runs an
            # untrusted one: on the sacrificial deadline thread, where
            # the forking thread's depth counter is invisible
            run_with_deadline("sandboxed", "prepare", forking_prepare, 10.0)
        assert phases == ["prepare"]  # the inner fork ran no phases


@pytest.mark.forks
class TestAtforkBackend:
    def test_handlers_fire_after_install(self, registry):
        events = []
        registry.register("t",
                          prepare=lambda: events.append("prepare"),
                          parent=lambda: events.append("parent"))
        patcher = ForkPatcher(registry, backend="atfork")
        patcher.install()
        try:
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            reap(pid)
            assert events == ["prepare", "parent"]
        finally:
            patcher.uninstall()

    def test_noop_after_uninstall(self, registry):
        events = []
        registry.register("t", prepare=lambda: events.append("prepare"))
        patcher = ForkPatcher(registry, backend="atfork")
        patcher.install()
        patcher.uninstall()
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        reap(pid)
        assert events == []

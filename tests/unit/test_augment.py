"""Unit tests: the augmented fork (repro.forkhooks.augment).

These fork real processes (children exit immediately via os._exit), so
they double as the paper's Listing 4 in miniature: alias installed,
handlers bracket the fork, alias removed.
"""

import os

import pytest

from repro.forkhooks.augment import ForkPatcher, active_patcher
from repro.forkhooks.registry import ForkHandlerRegistry
from repro.util.errors import ForkHookError


@pytest.fixture
def registry():
    return ForkHandlerRegistry()


def reap(pid):
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


class TestInstallUninstall:
    def test_install_replaces_os_fork(self, registry):
        original = os.fork
        patcher = ForkPatcher(registry)
        patcher.install()
        try:
            assert os.fork is not original
            assert active_patcher() is patcher
        finally:
            patcher.uninstall()
        assert os.fork is original
        assert active_patcher() is None

    def test_double_install_rejected(self, registry):
        patcher = ForkPatcher(registry)
        with patcher:
            with pytest.raises(ForkHookError):
                patcher.install()

    def test_two_patchers_rejected(self, registry):
        first = ForkPatcher(registry)
        second = ForkPatcher(ForkHandlerRegistry())
        with first:
            with pytest.raises(ForkHookError):
                second.install()

    def test_uninstall_without_install_is_noop(self, registry):
        ForkPatcher(registry).uninstall()  # no raise

    def test_foreign_repatch_detected(self, registry):
        patcher = ForkPatcher(registry)
        patcher.install()
        saved = os.fork
        os.fork = lambda: 0  # someone else patches over us
        try:
            with pytest.raises(ForkHookError):
                patcher.uninstall()
        finally:
            os.fork = saved
            patcher.uninstall()

    def test_unknown_backend_rejected(self, registry):
        with pytest.raises(ForkHookError):
            ForkPatcher(registry, backend="magic")


@pytest.mark.forks
class TestAliasBackendForks:
    def test_handlers_bracket_real_fork(self, registry):
        events = []
        registry.register("t",
                          prepare=lambda: events.append("prepare"),
                          parent=lambda: events.append("parent"),
                          child=lambda: os._exit(42))
        with ForkPatcher(registry):
            pid = os.fork()
            # we only ever get here in the parent: the child handler exits
            assert pid > 0
            assert reap(pid) == 42
        assert events == ["prepare", "parent"]

    def test_child_pid_callback(self, registry):
        seen = []
        patcher = ForkPatcher(registry)
        patcher.on_child_forked = seen.append
        with patcher:
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            reap(pid)
        assert seen == [pid]

    def test_prepare_failure_aborts_fork(self, registry):
        registry.register("veto", prepare=lambda: 1 / 0)
        forked = []
        with ForkPatcher(registry):
            with pytest.raises(ForkHookError):
                pid = os.fork()
                forked.append(pid)
        assert forked == []  # fork never happened

    def test_fork_still_works_after_uninstall(self, registry):
        with ForkPatcher(registry):
            pass
        pid = os.fork()
        if pid == 0:
            os._exit(7)
        assert reap(pid) == 7

    def test_callback_failure_does_not_break_fork(self, registry):
        patcher = ForkPatcher(registry)
        patcher.on_child_forked = lambda pid: 1 / 0
        with patcher:
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            assert reap(pid) == 0


@pytest.mark.forks
class TestAtforkBackend:
    def test_handlers_fire_after_install(self, registry):
        events = []
        registry.register("t",
                          prepare=lambda: events.append("prepare"),
                          parent=lambda: events.append("parent"))
        patcher = ForkPatcher(registry, backend="atfork")
        patcher.install()
        try:
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            reap(pid)
            assert events == ["prepare", "parent"]
        finally:
            patcher.uninstall()

    def test_noop_after_uninstall(self, registry):
        events = []
        registry.register("t", prepare=lambda: events.append("prepare"))
        patcher = ForkPatcher(registry, backend="atfork")
        patcher.install()
        patcher.uninstall()
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        reap(pid)
        assert events == []

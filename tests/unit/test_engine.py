"""Unit tests: the trace engine (repro.tracing.engine), in-process.

Each test installs the engine around a small traced function and scripts
the client side with an auto-releaser thread that answers every stop
with a queued resume action.
"""

import os
import threading

import pytest

from repro.tracing.control import ResumeCommand
from repro.tracing.engine import TraceEngine
from repro.util.errors import TraceError
from repro.util.ids import UEId

SRC = os.path.abspath(__file__)


class Scripted:
    """Collects stops; releases each with the next scripted action."""

    def __init__(self, engine=None, actions=()):
        self.actions = list(actions)
        self.stops = []
        self.engine = engine or TraceEngine(park_timeout=5.0)
        self.engine.on_stop = self._on_stop

    def _on_stop(self, ue, capture):
        self.stops.append(capture)
        action = self.actions.pop(0) if self.actions else "continue"
        until = None
        if isinstance(action, tuple):
            action, until = action

        def release():
            self.engine.controller.release(
                ue, ResumeCommand(action=action, until_line=until))

        threading.Thread(target=release).start()

    def run(self, func, *args):
        self.engine.install()
        try:
            return func(*args)
        finally:
            self.engine.uninstall()


def loop_sum(n):                      # line anchor helper
    total = 0
    for i in range(n):
        total += i                    # BP_LINE
    return total


BP_LINE = loop_sum.__code__.co_firstlineno + 3


def call_chain():
    return inner_a() + 1


def inner_a():
    value = inner_b()
    return value + 10


def inner_b():
    return 100


class TestLifecycle:
    def test_install_uninstall(self):
        engine = TraceEngine()
        engine.install()
        assert engine.installed
        engine.uninstall()
        assert not engine.installed

    def test_double_install_rejected(self):
        engine = TraceEngine()
        engine.install()
        try:
            with pytest.raises(TraceError):
                engine.install()
        finally:
            engine.uninstall()

    def test_uninstall_idempotent(self):
        TraceEngine().uninstall()

    def test_disable_enable_flag(self):
        engine = TraceEngine()
        engine.disable()
        assert not engine.enabled
        engine.enable()
        assert engine.enabled


class TestBreakpoints:
    def test_breakpoint_hits_each_iteration(self):
        script = Scripted()
        script.engine.breakpoints.add(SRC, BP_LINE)
        result = script.run(loop_sum, 4)
        assert result == 6
        assert len(script.stops) == 4
        assert all(s.reason == "breakpoint" for s in script.stops)
        assert all(s.top.line == BP_LINE for s in script.stops)

    def test_conditional_breakpoint(self):
        script = Scripted()
        script.engine.breakpoints.add(SRC, BP_LINE, condition="i == 2")
        script.run(loop_sum, 5)
        assert len(script.stops) == 1
        assert script.stops[0].top.locals["i"] == "2"

    def test_temporary_breakpoint_hits_once(self):
        script = Scripted()
        script.engine.breakpoints.add(SRC, BP_LINE, temporary=True)
        script.run(loop_sum, 5)
        assert len(script.stops) == 1

    def test_function_breakpoint_stops_on_entry(self):
        script = Scripted()
        script.engine.breakpoints.add_function("inner_b")
        result = script.run(call_chain)
        assert result == 111
        assert len(script.stops) == 1
        assert script.stops[0].top.function == "inner_b"

    def test_no_breakpoints_no_stops(self):
        script = Scripted()
        assert script.run(loop_sum, 10) == 45
        assert script.stops == []

    def test_disabled_engine_skips_breakpoints(self):
        script = Scripted()
        script.engine.breakpoints.add(SRC, BP_LINE)
        script.engine.disable()
        script.run(loop_sum, 3)
        assert script.stops == []

    def test_locals_rendered_at_stop(self):
        script = Scripted()
        script.engine.breakpoints.add(SRC, BP_LINE, condition="i == 3")
        script.run(loop_sum, 5)
        locals_ = script.stops[0].top.locals
        assert locals_["total"] == "3"  # 0+1+2
        assert locals_["n"] == "5"


class TestStepping:
    def test_step_reaches_next_line(self):
        script = Scripted(actions=["step", "continue"])
        script.engine.breakpoints.add(SRC, BP_LINE, temporary=True)
        script.run(loop_sum, 3)
        assert script.stops[0].reason == "breakpoint"
        assert script.stops[1].reason in ("step", "return")
        # from the loop body, one step lands back on the for or return line
        assert script.stops[1].top.line != 0

    def test_step_into_call(self):
        script = Scripted(actions=["step"])
        script.engine.breakpoints.add_function("inner_a")
        # stop at inner_a entry, step → first line of inner_a body or call
        script.run(call_chain)
        assert script.stops[0].top.function == "inner_a"
        assert len(script.stops) >= 2

    def test_return_command_runs_out_of_frame(self):
        script = Scripted(actions=["return", "continue"])
        script.engine.breakpoints.add_function("inner_b")
        result = script.run(call_chain)
        assert result == 111
        # second stop (after 'return') is outside inner_b
        assert script.stops[1].top.function != "inner_b"


class TestSuspend:
    def test_suspend_pauses_running_thread(self):
        engine = TraceEngine(park_timeout=5.0)
        stops = []
        release_done = threading.Event()

        def on_stop(ue, capture):
            stops.append((ue, capture))

            def release():
                engine.controller.release(ue, ResumeCommand("continue"))
                release_done.set()

            threading.Thread(target=release).start()

        engine.on_stop = on_stop
        stop_flag = threading.Event()
        started = threading.Event()

        def spin():
            started.set()
            count = 0
            while not stop_flag.is_set():
                count += 1
            return count

        engine.install()
        try:
            worker = threading.Thread(target=spin)
            worker.start()
            started.wait(2.0)
            ue = UEId(os.getpid(), worker.ident)
            engine.request_suspend(ue)
            assert release_done.wait(5.0), "suspend never stopped the thread"
            stop_flag.set()
            worker.join(5.0)
        finally:
            stop_flag.set()
            engine.uninstall()
        assert stops and stops[0][1].reason == "suspend"
        assert stops[0][0].tid == worker.ident

    def test_event_count_grows_only_when_enabled(self):
        engine = TraceEngine()
        engine.install()
        try:
            loop_sum(50)
            counted = engine.event_count
            engine.disable()
            loop_sum(50)
            assert engine.event_count == counted
        finally:
            engine.uninstall()


class TestForkReset:
    def test_reset_keeps_only_current_thread(self):
        engine = TraceEngine()
        other = UEId(os.getpid(), 424242)
        engine.state_for(other)
        engine.reset_after_fork()
        ues = engine.known_ues()
        assert other not in ues
        assert UEId.current() in ues

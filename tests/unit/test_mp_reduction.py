"""Unit tests: pickle framing over raw fds (repro.mp.reduction)."""

import os
import threading

import pytest

from repro.mp import reduction
from repro.util.errors import QueueClosed


@pytest.fixture
def pipe_fds():
    r, w = os.pipe()
    yield r, w
    for fd in (r, w):
        try:
            os.close(fd)
        except OSError:
            pass


class TestSendRecv:
    def test_roundtrip_object(self, pipe_fds):
        r, w = pipe_fds
        reduction.send_obj(w, {"key": [1, 2, (3, 4)]})
        assert reduction.recv_obj(r) == {"key": [1, 2, (3, 4)]}

    def test_roundtrip_preserves_types(self, pipe_fds):
        r, w = pipe_fds
        payload = (b"bytes", frozenset({1}), 2.5, None)
        reduction.send_obj(w, payload)
        assert reduction.recv_obj(r) == payload

    def test_multiple_frames_in_order(self, pipe_fds):
        r, w = pipe_fds
        for i in range(100):
            reduction.send_obj(w, i)
        assert [reduction.recv_obj(r) for _ in range(100)] == list(range(100))

    def test_send_returns_frame_size(self, pipe_fds):
        r, w = pipe_fds
        n = reduction.send_obj(w, "x")
        assert n == 4 + len(reduction.dumps("x"))

    def test_large_payload_crosses_pipe_buffer(self, pipe_fds):
        """Payloads larger than the 64K pipe buffer need a concurrent
        reader; exercise the write_all partial-write loop."""
        r, w = pipe_fds
        big = list(range(200_000))
        result = {}

        def read():
            result["value"] = reduction.recv_obj(r)

        reader = threading.Thread(target=read)
        reader.start()
        reduction.send_obj(w, big)
        reader.join(10.0)
        assert result["value"] == big


class TestEOFSemantics:
    def test_eof_between_frames_raises_eoferror(self, pipe_fds):
        r, w = pipe_fds
        reduction.send_obj(w, 1)
        os.close(w)
        assert reduction.recv_obj(r) == 1
        with pytest.raises(EOFError):
            reduction.recv_obj(r)

    def test_eof_mid_frame_raises_queueclosed(self, pipe_fds):
        r, w = pipe_fds
        frame = reduction.HEADER.pack(1000) + b"partial"
        os.write(w, frame)
        os.close(w)
        with pytest.raises(QueueClosed):
            reduction.recv_obj(r)

    def test_write_to_closed_pipe_raises_queueclosed(self, pipe_fds):
        import signal
        r, w = pipe_fds
        os.close(r)
        previous = signal.signal(signal.SIGPIPE, signal.SIG_IGN)
        try:
            with pytest.raises(QueueClosed):
                reduction.send_obj(w, "data")
        finally:
            signal.signal(signal.SIGPIPE, previous)

    def test_corrupt_length_rejected(self, pipe_fds):
        r, w = pipe_fds
        os.write(w, reduction.HEADER.pack(reduction.MAX_PAYLOAD + 1))
        with pytest.raises(QueueClosed):
            reduction.recv_obj(r)


class TestForgivingPickler:
    def test_normal_object(self):
        data = reduction.ForgivingPickler.safe_dumps({"x": 1})
        assert reduction.loads(data) == {"x": 1}

    def test_unpicklable_falls_back_to_repr(self):
        unpicklable = lambda: None  # noqa: E731 - lambdas don't pickle
        data = reduction.ForgivingPickler.safe_dumps(unpicklable)
        assert "lambda" in reduction.loads(data)

"""Unit tests: the Reactor listener thread (repro.server.listener).

Exercised with raw sockets speaking the framed protocol, no DebugServer
involved — these tests pin down the reactor behaviours the server builds
on: hello adoption, role filtering, broadcast, bad-peer containment.
"""

import socket

import pytest

from repro.server import protocol
from repro.server.listener import Listener
from repro.server.sockets import ListenEndpoint
from repro.util.framing import encode_frame, recv_frame, send_frame


class Harness:
    def __init__(self, on_request=None):
        self.requests = []
        self.hellos = []
        self.disconnects = []
        self.endpoint = ListenEndpoint()
        self.listener = Listener(
            self.endpoint,
            on_request=on_request or self._record_request,
            on_hello=lambda conn, hello: self.hellos.append(hello),
            on_disconnect=lambda conn: self.disconnects.append(conn),
        )
        self.listener.start()

    def _record_request(self, conn, message):
        self.requests.append(message)
        conn.send(protocol.make_response(message["id"], {"echo": True}))

    def dial(self, role=protocol.ROLE_COMMAND):
        sock = socket.create_connection(("127.0.0.1", self.endpoint.port),
                                        timeout=5)
        send_frame(sock, protocol.make_hello(role, pid=1, session_token="t"))
        return sock

    def close(self):
        self.listener.close()


@pytest.fixture
def harness(waiter):
    h = Harness()
    yield h
    h.close()


class TestConnectionLifecycle:
    def test_hello_adopts_role(self, harness, waiter):
        sock = harness.dial(protocol.ROLE_SOURCE)
        waiter(lambda: len(harness.hellos) == 1, message="hello")
        conns = harness.listener.connections(role=protocol.ROLE_SOURCE)
        assert len(conns) == 1
        sock.close()

    def test_request_dispatch_and_response(self, harness, waiter):
        sock = harness.dial()
        waiter(lambda: harness.hellos, message="hello")
        send_frame(sock, protocol.make_request(9, "anything", {"k": 1}))
        response = recv_frame(sock)
        assert response["id"] == 9 and response["ok"]
        assert harness.requests[0]["command"] == "anything"
        sock.close()

    def test_disconnect_detected(self, harness, waiter):
        sock = harness.dial()
        waiter(lambda: harness.hellos, message="hello")
        sock.close()
        waiter(lambda: harness.disconnects, message="disconnect callback")

    def test_multiple_connections_tracked(self, harness, waiter):
        socks = [harness.dial(protocol.ROLE_COMMAND),
                 harness.dial(protocol.ROLE_SOURCE)]
        waiter(lambda: len(harness.hellos) == 2, message="both hellos")
        assert len(harness.listener.connections()) == 2
        assert len(harness.listener.connections(
            role=protocol.ROLE_COMMAND)) == 1
        for sock in socks:
            sock.close()


class TestBroadcast:
    def test_event_reaches_command_role_only(self, harness, waiter):
        cmd = harness.dial(protocol.ROLE_COMMAND)
        src = harness.dial(protocol.ROLE_SOURCE)
        waiter(lambda: len(harness.hellos) == 2, message="hellos")
        sent = harness.listener.broadcast_event(
            protocol.make_event("stopped", {"x": 1}))
        assert sent == 1
        message = recv_frame(cmd)
        assert message["event"] == "stopped"
        src.settimeout(0.2)
        with pytest.raises(socket.timeout):
            src.recv(1)
        cmd.close()
        src.close()

    def test_broadcast_with_no_connections(self, harness):
        assert harness.listener.broadcast_event(
            protocol.make_event("x")) == 0


class TestHostilePeers:
    def test_bad_hello_drops_connection(self, harness, waiter):
        sock = socket.create_connection(
            ("127.0.0.1", harness.endpoint.port), timeout=5)
        send_frame(sock, {"type": "hello", "version": 1, "role": "evil"})
        waiter(lambda: harness.disconnects, message="drop")
        assert harness.listener.connections() == []
        sock.close()

    def test_garbage_bytes_drop_connection(self, harness, waiter):
        sock = harness.dial()
        waiter(lambda: harness.hellos, message="hello")
        sock.sendall(b"\xff" * 64)
        waiter(lambda: harness.disconnects, message="drop")
        sock.close()

    def test_request_before_hello_rejected(self, harness, waiter):
        sock = socket.create_connection(
            ("127.0.0.1", harness.endpoint.port), timeout=5)
        send_frame(sock, protocol.make_request(1, "threads"))
        waiter(lambda: harness.disconnects, message="drop")
        assert harness.requests == []
        sock.close()

    def test_handler_exception_becomes_error_response(self, waiter):
        def explode(conn, message):
            raise RuntimeError("handler bug")

        harness = Harness(on_request=explode)
        try:
            sock = harness.dial()
            waiter(lambda: harness.hellos, message="hello")
            send_frame(sock, protocol.make_request(4, "x"))
            response = recv_frame(sock)
            assert not response["ok"]
            assert "handler bug" in response["error"]["message"]
            # listener still alive: a second request gets served
            send_frame(sock, protocol.make_request(5, "x"))
            assert recv_frame(sock)["id"] == 5
            sock.close()
        finally:
            harness.close()


class TestLifecycle:
    def test_double_start_rejected(self, harness):
        from repro.util.errors import ProtocolError
        with pytest.raises(ProtocolError):
            harness.listener.start()

    def test_close_closes_endpoint_and_connections(self, harness, waiter):
        sock = harness.dial()
        waiter(lambda: harness.hellos, message="hello")
        harness.close()
        assert not harness.listener.running
        assert recv_frame(sock) is None  # server side closed
        sock.close()

"""Unit tests: the Fig. 2 text renderer (repro.client.textui)."""

import pytest

from repro.client.textui import PANE_WIDTH, TextUI, _fit
from repro.client import DebugClient
from repro.tracing.frames import FrameInfo, StackCapture
from repro.util.errors import ViewError
from repro.util.ids import UEId


class TestFit:
    def test_pads_short_text(self):
        assert _fit("abc", 10) == "abc       "

    def test_truncates_long_text_with_ellipsis(self):
        out = _fit("x" * 100, 10)
        assert len(out) == 10
        assert out.endswith("...")

    def test_exact_width_untouched(self):
        assert _fit("y" * 10, 10) == "y" * 10


class FakeSession:
    pid = 4242
    program = "fake"

    def threads(self):
        return [{"ue": {"pid": self.pid, "tid": 1},
                 "label": "process 4242 / main thread", "parked": True},
                {"ue": {"pid": self.pid, "tid": 2},
                 "label": "process 4242 / thread 2", "parked": False}]

    def fetch_source(self, file, start=1, end=None):
        lines = [f"line {i} of {file}" for i in range(start, (end or start) + 1)]
        return {"file": file, "start": start, "lines": lines}


class FakeView:
    def __init__(self, stopped=True):
        self.ue = UEId(4242, 1)
        self.session = FakeSession()
        self.is_stopped = stopped
        self.capture = StackCapture(
            frames=[FrameInfo(file="/app/worker.py", line=12,
                              function="crunch", source="x = f(y)",
                              locals={"x": "1", "y": "2"})],
            reason="breakpoint", breakpoint_id=1) if stopped else None

    def render(self, context=6):
        return {
            "ue": str(self.ue), "file": "/app/worker.py", "line": 12,
            "function": "crunch", "reason": "breakpoint",
            "source": ["   10  a", "-> 12  x = f(y)"],
            "variables": {"x": "1", "y": "2"},
            "stack": ["crunch at /app/worker.py:12"],
        }


class TestPanes:
    def test_source_pane_stopped(self):
        ui = TextUI(DebugClient())
        pane = ui.source_pane(FakeView())
        assert "worker.py:12 in crunch() [breakpoint]" in pane[0]
        assert any("->" in line for line in pane)

    def test_source_pane_running(self):
        ui = TextUI(DebugClient())
        pane = ui.source_pane(FakeView(stopped=False))
        assert "running" in pane[0]

    def test_variables_pane(self):
        ui = TextUI(DebugClient())
        pane = ui.variables_pane(FakeView())
        assert "x = 1" in pane and "y = 2" in pane

    def test_variables_pane_truncation(self):
        ui = TextUI(DebugClient(), max_variables=1)
        view = FakeView()
        pane = ui.variables_pane(view)
        assert len(pane) == 2
        assert "more)" in pane[-1]

    def test_variables_pane_not_stopped(self):
        ui = TextUI(DebugClient())
        assert ui.variables_pane(FakeView(stopped=False)) == \
            ["(not stopped)"]

    def test_output_pane_empty(self):
        client = DebugClient()
        ui = TextUI(client)
        assert ui.output_pane(999) == ["(no output)"]
        client.close()

    def test_output_pane_tail(self):
        client = DebugClient()
        with client._lock:  # noqa: SLF001 - direct buffer injection
            client._output[7] = [("stdout", f"line{i}\n")
                                 for i in range(20)]
        ui = TextUI(client, output_tail=3)
        pane = ui.output_pane(7)
        assert pane == ["line17", "line18", "line19"]
        client.close()

    def test_processes_pane_no_sessions(self):
        client = DebugClient()
        ui = TextUI(client)
        assert ui.processes_pane() == ["(no debuggees attached)"]
        client.close()


class TestRenderErrors:
    def test_render_with_no_views_raises(self):
        client = DebugClient()
        with pytest.raises(ViewError):
            TextUI(client).render()
        client.close()

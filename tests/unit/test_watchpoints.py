"""Unit tests: watchpoints (repro.tracing.watchpoints)."""

import sys

import pytest

from repro.tracing.watchpoints import WatchpointStore
from repro.util.errors import BreakpointError
from repro.util.ids import UEId

UE = UEId(1, 1)
OTHER = UEId(1, 2)


def frame_with(**variables):
    """A real frame whose locals are *variables*."""
    for name, value in variables.items():
        locals()[name] = value
    return sys._getframe()


@pytest.fixture
def store():
    return WatchpointStore()


class TestStore:
    def test_add_and_snapshot(self, store):
        watch = store.add("x + 1")
        assert watch.expression == "x + 1"
        snap = store.snapshot_state()
        assert snap[0]["expression"] == "x + 1"
        assert len(store) == 1

    def test_empty_expression_rejected(self, store):
        with pytest.raises(BreakpointError):
            store.add("   ")

    def test_syntax_error_rejected_eagerly(self, store):
        with pytest.raises(SyntaxError):
            store.add("x +")

    def test_remove(self, store):
        watch = store.add("x")
        store.remove(watch.id)
        assert store.is_empty

    def test_remove_unknown(self, store):
        with pytest.raises(BreakpointError):
            store.remove(99)

    def test_on_change_fires(self):
        calls = []
        store = WatchpointStore()
        store.on_change = lambda: calls.append(1)
        watch = store.add("x")
        store.remove(watch.id)
        store.clear()
        assert len(calls) == 3


class TestEvaluation:
    def test_first_observation_does_not_fire(self, store):
        store.add("x")
        assert store.evaluate(UE, frame_with(x=1)) is None

    def test_change_fires_with_old_and_new(self, store):
        watch = store.add("x")
        store.evaluate(UE, frame_with(x=1))
        hit = store.evaluate(UE, frame_with(x=2))
        assert hit is not None
        assert hit.watch_id == watch.id
        assert hit.old_value == "1" and hit.new_value == "2"
        assert watch.hit_count == 1

    def test_unchanged_value_does_not_fire(self, store):
        store.add("x")
        store.evaluate(UE, frame_with(x=5))
        assert store.evaluate(UE, frame_with(x=5)) is None

    def test_per_ue_memory(self, store):
        """Each UE tracks its own last value (thread-local variables)."""
        store.add("x")
        store.evaluate(UE, frame_with(x=1))
        # OTHER sees x for the first time: no hit
        assert store.evaluate(OTHER, frame_with(x=99)) is None
        # UE's change still fires
        assert store.evaluate(UE, frame_with(x=2)) is not None

    def test_unobservable_expression_skipped(self, store):
        store.add("not_defined_here")
        assert store.evaluate(UE, frame_with(x=1)) is None

    def test_disabled_watch_ignored(self, store):
        watch = store.add("x")
        store.evaluate(UE, frame_with(x=1))
        store.set_enabled(watch.id, False)
        assert store.evaluate(UE, frame_with(x=2)) is None

    def test_globals_visible(self, store):
        store.add("__name__")
        first = store.evaluate(UE, frame_with())
        assert first is None  # observed once, no change

    def test_hit_is_wire_safe(self, store):
        import json
        store.add("x")
        store.evaluate(UE, frame_with(x=[1]))
        hit = store.evaluate(UE, frame_with(x=[1, 2]))
        json.dumps(hit.to_wire())

    def test_reset_after_fork_clears_memory(self, store):
        store.add("x")
        store.evaluate(UE, frame_with(x=1))
        store.reset_after_fork()
        # first post-fork observation: no spurious hit
        assert store.evaluate(UE, frame_with(x=42)) is None


class TestEngineIntegration:
    def test_watch_stops_on_change(self):
        import threading
        from repro.tracing.engine import TraceEngine
        from repro.tracing.control import ResumeCommand

        stops = []
        engine = TraceEngine(park_timeout=5.0)

        def on_stop(ue, capture):
            stops.append(capture)
            threading.Thread(
                target=lambda: engine.controller.release(
                    ue, ResumeCommand("continue"))).start()

        engine.on_stop = on_stop
        engine.watchpoints.add("total")

        def target():
            total = 0
            for i in range(3):
                total += 10
            return total

        engine.install()
        try:
            result = target()
        finally:
            engine.uninstall()
        assert result == 30
        watch_stops = [c for c in stops if c.reason == "watch"]
        assert len(watch_stops) == 3  # 0->10, 10->20, 20->30
        assert watch_stops[0].watch["expression"] == "total"
        assert watch_stops[0].watch["old_value"] == "0"
        assert watch_stops[0].watch["new_value"] == "10"

"""Unit tests: trace-context propagation (repro.obs.causality)."""

import os

import pytest

from repro.obs import causality


@pytest.fixture(autouse=True)
def clean_causality():
    """Each test starts with no root/control/pending state and ends the
    same way — causality is process-global by design."""
    causality.clear_pending_fork()
    causality._tls.stack = []  # noqa: SLF001 - test hygiene
    causality._control = None  # noqa: SLF001
    causality._root = None  # noqa: SLF001
    yield
    causality.clear_pending_fork()
    causality._tls.stack = []  # noqa: SLF001
    causality._control = None  # noqa: SLF001
    causality._root = None  # noqa: SLF001


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = causality.TraceContext(trace_id="t1", span_id="s1",
                                     parent_span_id="s0", pid=42,
                                     wall=100.0, mono=5.0)
        back = causality.from_wire(ctx.to_wire())
        assert back == ctx

    def test_from_wire_tolerates_garbage(self):
        assert causality.from_wire(None) is None
        assert causality.from_wire("nope") is None
        assert causality.from_wire({}) is None
        assert causality.from_wire({"trace_id": 7, "span_id": "s"}) is None
        # Bad optional fields degrade, never raise.
        ctx = causality.from_wire({"trace_id": "t", "span_id": "s",
                                   "parent_span_id": 9,
                                   "pid": "zero", "wall": [], "mono": {}})
        assert ctx is not None
        assert ctx.parent_span_id is None
        assert ctx.pid == 0

    def test_child_links_back(self):
        root = causality.process_root()
        child = root.child(causality.new_span_id())
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.pid == os.getpid()


class TestIds:
    def test_ids_are_unique(self):
        ids = {causality.new_span_id() for _ in range(1000)}
        assert len(ids) == 1000

    def test_reseed_changes_prefix(self):
        before = causality.new_span_id()
        causality._reseed()  # noqa: SLF001 - the fork-handler body
        after = causality.new_span_id()
        assert before.rsplit(".", 1)[0] != after.rsplit(".", 1)[0]


class TestThreadStack:
    def test_activate_scopes_current(self):
        assert causality.current() is None
        ctx = causality.process_root().child(causality.new_span_id())
        with causality.activate(ctx):
            assert causality.current() is ctx
        assert causality.current() is None

    def test_activate_none_is_noop(self):
        with causality.activate(None):
            assert causality.current() is None

    def test_nested_activation(self):
        a = causality.process_root().child(causality.new_span_id())
        b = a.child(causality.new_span_id())
        with causality.activate(a):
            with causality.activate(b):
                assert causality.current() is b
            assert causality.current() is a


class TestForkParentPrecedence:
    def test_falls_back_to_process_root(self):
        assert causality.fork_parent_context() == causality.process_root()

    def test_control_verb_beats_root(self):
        ctl = causality.process_root().child(causality.new_span_id())
        causality.note_control(ctl)
        assert causality.fork_parent_context() is ctl

    def test_active_thread_context_beats_control(self):
        ctl = causality.process_root().child(causality.new_span_id())
        causality.note_control(ctl)
        active = ctl.child(causality.new_span_id())
        with causality.activate(active):
            assert causality.fork_parent_context() is active


class TestForkReset:
    def test_staged_fork_roots_child_in_same_trace(self):
        parent_root = causality.process_root()
        bracket = parent_root.child(causality.new_span_id())
        causality.stage_fork(bracket)
        returned = causality.reset_after_fork()
        assert returned is bracket
        child_root = causality.process_root()
        assert child_root.trace_id == parent_root.trace_id
        assert child_root.parent_span_id == bracket.span_id
        # The slot is consumed — a second fork without staging is untraced.
        assert causality.pending_fork() is None

    def test_untraced_fork_starts_fresh_trace(self):
        old = causality.process_root()
        assert causality.reset_after_fork() is None
        new = causality.process_root()
        assert new.trace_id != old.trace_id
        assert new.parent_span_id is None

    def test_reset_clears_thread_and_control_state(self):
        causality.note_control(
            causality.process_root().child(causality.new_span_id()))
        causality._tls.stack = [causality.process_root()]  # noqa: SLF001
        causality.reset_after_fork()
        assert causality.current() is None
        assert causality.control_context() is None


class TestExecReset:
    def test_handoff_continues_trace(self):
        old_root = causality.process_root()
        parent = causality.reset_after_exec(old_root.to_wire())
        assert parent == old_root
        new_root = causality.process_root()
        assert new_root.trace_id == old_root.trace_id
        assert new_root.parent_span_id == old_root.span_id

    def test_garbage_handoff_means_fresh_lazy_root(self):
        old = causality.process_root()
        assert causality.reset_after_exec({"nope": 1}) is None
        fresh = causality.process_root()
        assert fresh.trace_id != old.trace_id

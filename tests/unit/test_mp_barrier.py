"""Unit tests: the cross-process barrier (repro.mp.synchronize.Barrier)."""

import os
import threading
import time

import pytest

from repro.mp.synchronize import Barrier
from repro.util.errors import SyncObjectError


class TestThreads:
    def test_single_party_passes_immediately(self):
        barrier = Barrier(1)
        assert barrier.wait(timeout=2.0)
        barrier.close()

    def test_invalid_parties(self):
        with pytest.raises(SyncObjectError):
            Barrier(0)

    def test_no_one_passes_early(self):
        barrier = Barrier(3)
        passed = []

        def party():
            if barrier.wait(timeout=5.0):
                passed.append(time.monotonic())

        threads = [threading.Thread(target=party) for _ in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.2)
        assert passed == [], "parties passed before the barrier filled"
        third = threading.Thread(target=party)
        third.start()
        for t in threads + [third]:
            t.join(5.0)
        assert len(passed) == 3
        barrier.close()

    def test_timeout_returns_false(self):
        barrier = Barrier(2)
        start = time.monotonic()
        assert not barrier.wait(timeout=0.2)
        assert time.monotonic() - start >= 0.15
        barrier.close()

    def test_cyclic_reuse(self):
        barrier = Barrier(2)
        results = []

        def cycles():
            for _ in range(5):
                results.append(barrier.wait(timeout=5.0))

        threads = [threading.Thread(target=cycles) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert results == [True] * 10
        barrier.close()

    def test_phase_ordering(self):
        """Work before the barrier is visible to everyone after it."""
        barrier = Barrier(4)
        pre = []
        post_observations = []
        lock = threading.Lock()

        def party(i):
            with lock:
                pre.append(i)
            assert barrier.wait(timeout=5.0)
            with lock:
                post_observations.append(len(pre))

        threads = [threading.Thread(target=party, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
        assert all(seen == 4 for seen in post_observations)
        barrier.close()


@pytest.mark.forks
class TestProcesses:
    def test_barrier_across_fork(self):
        """Children and parent synchronise through the shared pipes."""
        barrier = Barrier(3)
        pids = []
        for _ in range(2):
            pid = os.fork()
            if pid == 0:
                ok = barrier.wait(timeout=10.0)
                os._exit(0 if ok else 1)
            pids.append(pid)
        assert barrier.wait(timeout=10.0)
        for pid in pids:
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
        barrier.close()

    def test_children_align_phases(self):
        """Barrier-separated phases: all phase-1 writes complete before
        any phase-2 read (verified through shared memory)."""
        from repro.mp.sharedmem import SharedArray
        n = 3
        barrier = Barrier(n)
        phase1 = SharedArray("q", n)
        ok = SharedArray("B", n)
        pids = []
        for i in range(n - 1):
            pid = os.fork()
            if pid == 0:
                phase1[i] = i + 1
                barrier.wait(timeout=10.0)
                ok[i] = 1 if sum(phase1) == sum(range(1, n + 1)) else 0
                os._exit(0)
            pids.append(pid)
        phase1[n - 1] = n
        barrier.wait(timeout=10.0)
        ok[n - 1] = 1 if sum(phase1) == sum(range(1, n + 1)) else 0
        for pid in pids:
            os.waitpid(pid, 0)
        assert ok.tolist() == [1] * n
        barrier.close()
        phase1.close()
        ok.close()

"""Unit tests: the Fig. 4 metadata block (repro.server.sessionstate)."""

import os
import threading

from repro.server.sessionstate import SessionState, new_session_token


class TestConstruction:
    def test_defaults_describe_this_process(self):
        state = SessionState(program="prog")
        assert state.pid == os.getpid()
        assert state.parent_pid == os.getppid()
        assert state.program == "prog"
        assert state.main_thread_ident == threading.main_thread().ident
        assert state.fork_generation == 0

    def test_tokens_are_unique(self):
        assert new_session_token() != new_session_token()
        assert SessionState().session_token != SessionState().session_token


class TestChildren:
    def test_record_child_deduplicates(self):
        state = SessionState()
        state.record_child(100)
        state.record_child(100)
        state.record_child(200)
        assert state.children == [100, 200]


class TestForkRewrite:
    """The before/after of paper Fig. 4."""

    def test_rewrite_updates_identity(self):
        state = SessionState(program="prog")
        state.record_child(5)
        old_pid = state.pid
        old_token = state.session_token

        state.rewrite_for_child()

        # New identity...
        assert state.parent_pid == old_pid
        assert state.session_token != old_token
        assert state.fork_generation == 1
        # ...fresh bookkeeping...
        assert state.children == []
        # ...same debugging intent (program name survives).
        assert state.program == "prog"

    def test_forking_thread_becomes_main(self):
        state = SessionState()
        results = {}

        def fork_like():
            state.rewrite_for_child()
            results["main"] = state.main_thread_ident

        thread = threading.Thread(target=fork_like)
        thread.start()
        thread.join()
        assert results["main"] == thread.ident

    def test_generation_counts_hops(self):
        state = SessionState()
        state.rewrite_for_child()
        state.rewrite_for_child()
        assert state.fork_generation == 2


class TestDescribe:
    def test_describe_is_wire_safe(self):
        import json
        state = SessionState(program="p")
        state.record_child(9)
        wire = state.describe()
        json.dumps(wire)
        assert wire["children"] == [9]
        assert wire["pid"] == state.pid


class TestEpoch:
    def test_epoch_counts_incarnations(self):
        state = SessionState()
        assert state.epoch == 0
        state.rewrite_for_child()
        assert state.epoch == 1
        state.rewrite_for_child()
        assert state.epoch == 2

    def test_rewrite_mints_a_new_token(self):
        """A child's epoch has its own token, so a client holding the
        parent's token cannot accidentally drive the child."""
        state = SessionState()
        before = state.session_token
        state.rewrite_for_child()
        assert state.session_token != before

    def test_describe_includes_epoch(self):
        state = SessionState()
        state.rewrite_for_child()
        assert state.describe()["epoch"] == 1

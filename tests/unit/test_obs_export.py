"""Unit tests: Chrome trace-event export (repro.obs.export)."""

import json

from repro.obs.export import chrome_trace, validate_trace, write_chrome_trace


def make_snapshot(pid=100, program="debuggee", wall=1000.0, mono=50.0,
                  spans=None, ringlog=None, counters=None):
    """A telemetry snapshot shaped like the `telemetry` command's reply."""
    return {
        "pid": pid,
        "program": program,
        "fork_generation": 0,
        "clock": {"wall": wall, "mono": mono},
        "metrics": {"labels": {"pid": pid}, "counters": counters or {},
                    "gauges": {}, "histograms": {}},
        "spans": spans or [],
        "ringlog": ringlog or [],
    }


class TestChromeTrace:
    def test_empty_snapshot_yields_metadata_only(self):
        doc = chrome_trace([make_snapshot()])
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases == ["M"]
        assert doc["displayTimeUnit"] == "ms"
        assert validate_trace(doc) == []

    def test_span_becomes_complete_event(self):
        span = {"name": "cmd:step", "cat": "command", "pid": 100,
                "tid": 7, "wall": 999.0, "mono": 49.0, "dur": 0.002}
        doc = chrome_trace([make_snapshot(spans=[span])])
        (x_event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x_event["name"] == "cmd:step"
        assert x_event["cat"] == "command"
        assert x_event["dur"] == 0.002 * 1e6
        assert x_event["pid"] == 100
        assert x_event["tid"] == 7
        assert validate_trace(doc) == []

    def test_ringlog_record_becomes_instant_event(self):
        record = {"seq": 1, "timestamp": 999.5, "mono": 49.5, "pid": 100,
                  "tid": 3, "category": "server", "message": "hello"}
        doc = chrome_trace([make_snapshot(ringlog=[record])])
        (i_event,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert i_event["name"] == "hello"
        assert i_event["cat"] == "server"
        assert i_event["s"] == "t"
        assert validate_trace(doc) == []

    def test_counters_become_counter_events(self):
        doc = chrome_trace([make_snapshot(counters={"proto.tx_frames": 5})])
        (c_event,) = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert c_event["name"] == "proto.tx_frames"
        assert c_event["args"]["value"] == 5
        assert validate_trace(doc) == []

    def test_cross_process_alignment_uses_clock_anchors(self):
        """Two processes, same wall instant, different monotonic bases:
        events recorded at the same true time land at the same ts."""
        span_a = {"name": "a", "cat": "t", "pid": 1, "tid": 1,
                  "wall": 999.0, "mono": 9.0, "dur": 0.001}
        span_b = {"name": "b", "cat": "t", "pid": 2, "tid": 1,
                  "wall": 999.0, "mono": 7249.0, "dur": 0.001}
        doc = chrome_trace([
            # both anchors taken at the same wall instant (1000.0);
            # process 2's monotonic clock started much earlier
            make_snapshot(pid=1, wall=1000.0, mono=10.0, spans=[span_a]),
            make_snapshot(pid=2, wall=1000.0, mono=7250.0, spans=[span_b]),
        ])
        ts = {e["name"]: e["ts"] for e in doc["traceEvents"]
              if e["ph"] == "X"}
        assert ts["a"] == ts["b"]

    def test_ts_normalised_to_small_origin(self):
        span = {"name": "s", "cat": "t", "pid": 1, "tid": 1,
                "wall": 999.0, "mono": 49.0, "dur": 0.001}
        doc = chrome_trace([make_snapshot(pid=1, spans=[span])])
        stamped = [e for e in doc["traceEvents"] if "ts" in e]
        assert min(e["ts"] for e in stamped) == 0

    def test_client_snapshot_joins_the_timeline(self):
        client = make_snapshot(pid=999, program=None)
        client.pop("program")
        doc = chrome_trace([make_snapshot()], client_snapshot=client)
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"]
        assert any("debug client" in n for n in names)
        assert validate_trace(doc) == []


class TestWriteAndValidate:
    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        span = {"name": "s", "cat": "t", "pid": 1, "tid": 1,
                "wall": 999.0, "mono": 49.0, "dur": 0.001}
        document = write_chrome_trace(
            str(path), [make_snapshot(pid=1, spans=[span])])
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(document))
        assert validate_trace(loaded) == []

    def test_validate_flags_malformed_events(self):
        bad = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "ts": 0},
            {"ph": "X", "name": "no-dur", "pid": 1, "ts": 0},
            {"ph": "i", "name": "no-pid", "ts": 0},
            {"ph": "i", "name": "neg", "pid": 1, "ts": -5},
        ]}
        problems = validate_trace(bad)
        assert len(problems) == 4

    def test_validate_rejects_non_document(self):
        assert validate_trace([]) == ["document is not an object"]
        assert validate_trace({}) == ["traceEvents missing or not a list"]


class TestFlowEvents:
    def flow_span(self, **over):
        span = {"name": "process.root", "cat": "process", "pid": 200,
                "tid": 1, "wall": 1001.0, "mono": 51.0, "dur": 0.0,
                "id": "sChild", "parent": "sBracket", "trace": "t1",
                "args": {"flow": {"kind": "fork", "parent_span": "sBracket",
                                  "parent_pid": 100, "wall": 1000.5}}}
        span.update(over)
        return span

    def test_fork_flow_emits_start_finish_pair(self):
        doc = chrome_trace(
            [make_snapshot(pid=200, spans=[self.flow_span()])])
        flows = [e for e in doc["traceEvents"] if e.get("cat") == "flow"]
        assert [e["ph"] for e in flows] == ["s", "f"]
        start, finish = flows
        assert start["pid"] == 100  # the arrow leaves the parent...
        assert finish["pid"] == 200  # ...and lands on the child's root
        assert start["id"] == finish["id"] == "sChild"
        assert start["name"] == finish["name"] == "fork-flow"
        assert finish["bp"] == "e"
        assert validate_trace(doc) == []

    def test_span_ids_surface_in_event_args(self):
        doc = chrome_trace(
            [make_snapshot(pid=200, spans=[self.flow_span()])])
        (x_event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x_event["args"]["span_id"] == "sChild"
        assert x_event["args"]["parent_span_id"] == "sBracket"
        assert x_event["args"]["trace_id"] == "t1"

    def test_flow_without_parent_pid_is_skipped(self):
        span = self.flow_span()
        del span["args"]["flow"]["parent_pid"]
        doc = chrome_trace([make_snapshot(pid=200, spans=[span])])
        assert [e for e in doc["traceEvents"] if e.get("cat") == "flow"] \
            == []

    def test_rpc_flow_names_its_kind(self):
        span = self.flow_span()
        span["args"]["flow"]["kind"] = "rpc"
        doc = chrome_trace([make_snapshot(pid=200, spans=[span])])
        flows = [e for e in doc["traceEvents"] if e.get("cat") == "flow"]
        assert all(e["name"] == "rpc-flow" for e in flows)

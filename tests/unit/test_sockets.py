"""Unit tests: connection/endpoint primitives (repro.server.sockets)."""

import os
import socket

import pytest

from repro.server import protocol
from repro.server.sockets import Connection, ListenEndpoint, connect_endpoint
from repro.util.errors import ProtocolError
from repro.util.framing import recv_frame


def tcp_pair():
    """A connected (server-side Connection, client socket) pair."""
    endpoint = ListenEndpoint()
    client = socket.create_connection(("127.0.0.1", endpoint.port),
                                      timeout=5)
    server_conn = endpoint.accept()
    endpoint.close()
    return server_conn, client


class TestConnection:
    def test_send_is_framed(self):
        conn, client = tcp_pair()
        assert conn.send({"hello": 1})
        assert recv_frame(client) == {"hello": 1}
        conn.close()
        client.close()

    def test_send_after_close_returns_false(self):
        conn, client = tcp_pair()
        conn.close()
        assert not conn.send({"x": 1})
        client.close()

    def test_send_to_dead_peer_marks_closed(self):
        conn, client = tcp_pair()
        client.close()
        # first sends may be buffered; eventually the broken pipe shows
        for _ in range(64):
            if not conn.send({"spam": "x" * 8192}):
                break
        assert conn.closed
        conn.close()

    def test_role_adoption_validates(self):
        conn, client = tcp_pair()
        with pytest.raises(ProtocolError):
            conn.adopt_role({"type": "hello", "version": 1,
                             "role": "superuser"})
        conn.adopt_role(protocol.make_hello(
            protocol.ROLE_SOURCE, pid=1, session_token="t"))
        assert conn.role == protocol.ROLE_SOURCE
        assert not conn.awaiting_hello
        conn.close()
        client.close()

    def test_close_idempotent(self):
        conn, client = tcp_pair()
        conn.close()
        conn.close()
        client.close()


class TestShutdownSemantics:
    """The §5.3/Fig. 5 regression, pinned at socket level."""

    def test_owner_close_shuts_down_peer(self):
        conn, client = tcp_pair()
        conn.close(shutdown=True)
        assert recv_frame(client) is None  # peer sees EOF
        client.close()

    @pytest.mark.forks
    def test_inherited_close_without_shutdown_keeps_stream(self):
        """A forked child closing its descriptor copies (no shutdown)
        must NOT sever the parent's connection."""
        conn, client = tcp_pair()
        pid = os.fork()
        if pid == 0:
            # the child: drop inherited copies the fork-handler way
            conn.close(shutdown=False)
            client.close()
            os._exit(0)
        os.waitpid(pid, 0)
        # parent's connection still works in both directions
        assert conn.send({"still": "alive"})
        assert recv_frame(client) == {"still": "alive"}
        conn.close()
        client.close()

    def test_inherited_close_survives_a_held_send_lock(self):
        """A parent thread mid-send (lock held) at the fork moment
        leaves the inherited ``_send_lock`` held forever in the
        single-threaded child; the inherited-close mode must flip the
        flag and replace the lock, never acquire it."""
        conn, client = tcp_pair()
        inherited = conn._send_lock
        inherited.acquire()
        try:
            conn.close(shutdown=False)
        finally:
            inherited.release()
        assert conn.closed
        assert conn._send_lock is not inherited
        client.close()

    @pytest.mark.forks
    def test_inherited_close_with_shutdown_would_break_parent(self):
        """Documents WHY shutdown=False exists: the opposite choice
        kills the parent's live stream."""
        conn, client = tcp_pair()
        pid = os.fork()
        if pid == 0:
            conn.close(shutdown=True)  # the bug, on purpose
            os._exit(0)
        os.waitpid(pid, 0)
        assert recv_frame(client) is None  # parent's stream is dead
        conn.close()
        client.close()


class TestListenEndpoint:
    def test_ephemeral_port_assigned(self):
        endpoint = ListenEndpoint()
        assert endpoint.port > 0
        endpoint.close()

    def test_two_endpoints_distinct_ports(self):
        a, b = ListenEndpoint(), ListenEndpoint()
        assert a.port != b.port
        a.close()
        b.close()

    def test_close_idempotent(self):
        endpoint = ListenEndpoint()
        endpoint.close()
        endpoint.close()
        assert endpoint.closed


class TestConnectEndpoint:
    def test_sends_hello_on_connect(self):
        endpoint = ListenEndpoint()
        sock = connect_endpoint("127.0.0.1", endpoint.port,
                                protocol.ROLE_COMMAND, pid=9,
                                session_token="tok")
        server_conn = endpoint.accept()
        data = server_conn.sock.recv(65536)
        server_conn.decoder.feed(data)
        hello = next(server_conn.decoder.messages())
        assert hello["role"] == "command"
        assert hello["session_token"] == "tok"
        sock.close()
        server_conn.close()
        endpoint.close()

    def test_invalid_role_rejected_before_dialing(self):
        with pytest.raises(ProtocolError):
            connect_endpoint("127.0.0.1", 1, "admin", pid=1,
                             session_token="t")

"""Unit tests: fault-injection registry and schedules (repro.testkit.faults).

The stress tier's determinism guarantee rests on three properties tested
here: seeded schedules are pure functions of the hit index, per-point
sub-seeds are stable, and plans snapshot their counters on disarm.
"""

import errno

import pytest

from repro.testkit.faults import (
    Fault,
    FaultInjectionError,
    FaultPlan,
    FaultRegistry,
    Schedule,
    armed,
    fire,
    io_fault,
    maybe_fault,
    point_seed,
    registry,
)


@pytest.fixture(autouse=True)
def clean_registry():
    """No armed point may leak into (or out of) any test."""
    registry().reset()
    yield
    registry().reset()


class TestSchedules:
    def test_always_and_limit(self):
        s = Schedule.always()
        assert all(s.fires(i) for i in (1, 2, 100))
        s3 = Schedule.always(limit=3)
        assert [s3.fires(i) for i in range(1, 6)] == [
            True, True, True, False, False]

    def test_never(self):
        s = Schedule.never()
        assert not any(s.fires(i) for i in range(1, 50))

    def test_on_hits(self):
        s = Schedule.on_hits(2, 5)
        assert [s.fires(i) for i in range(1, 7)] == [
            False, True, False, False, True, False]

    def test_every_k(self):
        s = Schedule.every(3)
        assert [s.fires(i) for i in range(1, 8)] == [
            False, False, True, False, False, True, False]

    def test_every_k_with_limit(self):
        s = Schedule.every(2, limit=2)  # fires on hits 2 and 4, then stops
        fired = [i for i in range(1, 20) if s.fires(i)]
        assert fired == [2, 4]

    def test_every_zero_rejected(self):
        with pytest.raises(FaultInjectionError):
            Schedule.every(0)

    def test_seeded_is_deterministic(self):
        a = Schedule.seeded(1234, rate=0.3)
        b = Schedule.seeded(1234, rate=0.3)
        assert [a.fires(i) for i in range(1, 201)] == \
               [b.fires(i) for i in range(1, 201)]

    def test_seeded_order_independent(self):
        """The answer for hit i must not depend on evaluation order."""
        forward = Schedule.seeded(77, rate=0.5)
        shuffled = Schedule.seeded(77, rate=0.5)
        in_order = [forward.fires(i) for i in range(1, 51)]
        # Evaluate the second schedule backwards, then re-ask forwards.
        backwards = [shuffled.fires(i) for i in range(50, 0, -1)][::-1]
        assert in_order == backwards
        assert in_order == [shuffled.fires(i) for i in range(1, 51)]

    def test_seeded_respects_limit(self):
        s = Schedule.seeded(9, rate=1.0, limit=4)
        fired = [i for i in range(1, 100) if s.fires(i)]
        assert fired == [1, 2, 3, 4]

    def test_seeded_rate_bounds(self):
        with pytest.raises(FaultInjectionError):
            Schedule.seeded(1, rate=1.5)

    def test_point_seed_stable_and_distinct(self):
        assert point_seed(42, "mp.pipe.write") == point_seed(
            42, "mp.pipe.write")
        assert point_seed(42, "mp.pipe.write") != point_seed(
            42, "mp.pipe.read")
        assert point_seed(42, "x") != point_seed(43, "x")


class TestFaults:
    def test_os_error(self):
        with pytest.raises(OSError) as exc_info:
            Fault.os_error(errno.EAGAIN, "no forks left").apply()
        assert exc_info.value.errno == errno.EAGAIN

    def test_eintr_is_interrupted_error(self):
        with pytest.raises(InterruptedError):
            Fault.eintr().apply()

    def test_partial_clamps_io_budget(self):
        f = Fault.partial(3)
        assert f.apply_io(10) == 3
        assert f.apply_io(2) == 2
        assert f.apply_io(0) == 1  # never starves the syscall entirely

    def test_partial_rejects_zero_limit(self):
        with pytest.raises(FaultInjectionError):
            Fault.partial(0)

    def test_partial_is_noop_at_non_io_site(self):
        Fault.partial(1).apply()  # must not raise

    def test_delay_proceeds(self):
        Fault.delay(0.0).apply()  # must not raise


class TestRegistry:
    def test_arm_check_fires(self):
        reg = FaultRegistry()
        reg.arm("p", Fault.eintr(), Schedule.on_hits(2))
        assert reg.check("p") is None       # hit 1
        assert reg.check("p") is not None   # hit 2 fires
        assert reg.check("p") is None       # hit 3
        assert reg.stats("p") == (3, 1)
        assert reg.fire_log("p") == [2]

    def test_double_arm_rejected(self):
        reg = FaultRegistry()
        reg.arm("p", Fault.eintr())
        with pytest.raises(FaultInjectionError):
            reg.arm("p", Fault.eintr())

    def test_empty_point_name_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultRegistry().arm("", Fault.eintr())

    def test_disarm_and_reset(self):
        reg = FaultRegistry()
        reg.arm("a", Fault.eintr())
        reg.arm("b", Fault.eintr())
        reg.disarm("a")
        assert reg.armed_points == ["b"]
        reg.reset()
        assert reg.armed_points == []

    def test_stats_for_unknown_point(self):
        reg = FaultRegistry()
        assert reg.stats("ghost") == (0, 0)
        assert reg.fire_log("ghost") == []

    def test_fire_fast_path_disarmed(self):
        assert fire("anything") is None

    def test_io_fault_passthrough_when_disarmed(self):
        assert io_fault("anything", 4096) == 4096


class TestShimEntryPoints:
    def test_maybe_fault_raises_when_armed(self):
        with armed("unit.point", Fault.os_error(errno.EIO)):
            with pytest.raises(OSError):
                maybe_fault("unit.point")
        maybe_fault("unit.point")  # disarmed again: no-op

    def test_io_fault_partial_budget(self):
        with armed("unit.io", Fault.partial(5)):
            assert io_fault("unit.io", 100) == 5

    def test_armed_disarms_on_exception(self):
        with pytest.raises(RuntimeError):
            with armed("unit.exc", Fault.eintr()):
                raise RuntimeError("boom")
        assert "unit.exc" not in registry().armed_points


class TestFaultPlan:
    def test_same_seed_same_sequence(self):
        spec = {"a.point": (Fault.eintr(), 0.5),
                "b.point": (Fault.eintr(), 0.5)}

        def drive(plan):
            fired = []
            with plan:
                for i in range(100):
                    point = "a.point" if i % 2 == 0 else "b.point"
                    try:
                        maybe_fault(point)
                        fired.append(False)
                    except InterruptedError:
                        fired.append(True)
            return fired, plan.fire_logs()

        run1 = drive(FaultPlan(31337, spec))
        run2 = drive(FaultPlan(31337, spec))
        assert run1 == run2
        assert any(run1[0]), "rate=0.5 over 100 hits must fire sometimes"

    def test_explicit_schedule_in_spec(self):
        plan = FaultPlan(1, {"p": (Fault.eintr(), Schedule.on_hits(1))})
        with plan:
            with pytest.raises(InterruptedError):
                maybe_fault("p")
            maybe_fault("p")
        assert plan.stats()["p"] == (2, 1)
        assert plan.fire_logs()["p"] == [1]

    def test_stats_survive_disarm(self):
        plan = FaultPlan(5, {"p": (Fault.eintr(), Schedule.never())})
        with plan:
            maybe_fault("p")
            maybe_fault("p")
        assert "p" not in registry().armed_points
        assert plan.stats()["p"] == (2, 0)

    def test_arming_conflict_unwinds_cleanly(self):
        registry().arm("b", Fault.eintr())
        plan = FaultPlan(1, {"a": (Fault.eintr(), 0.1),
                             "b": (Fault.eintr(), 0.1)})
        with pytest.raises(FaultInjectionError):
            plan.__enter__()
        # The plan's own points must not be left half-armed.
        assert registry().armed_points == ["b"]

    def test_reenter_rejected(self):
        plan = FaultPlan(1, {"p": (Fault.eintr(), 0.0)})
        with plan:
            with pytest.raises(FaultInjectionError):
                plan.__enter__()

"""Unit tests: transcript entries and recorder mechanics (no sockets)."""

import json

import pytest

from repro.client.recording import SessionRecorder, TranscriptEntry


class FakeSession:
    def __init__(self, pid=100, fail=False):
        self.pid = pid
        self._fail = fail
        self.calls = []

    def request(self, command, args=None, timeout=None):
        self.calls.append((command, args))
        if self._fail:
            raise RuntimeError("server unhappy")
        return {"echo": command}


class TestTranscriptEntry:
    def test_json_roundtrip(self):
        entry = TranscriptEntry(timestamp=1.5, pid=7,
                                direction="request",
                                payload={"command": "step"})
        back = TranscriptEntry.from_json(entry.to_json())
        assert back == entry

    def test_json_is_single_line(self):
        entry = TranscriptEntry(timestamp=0.0, pid=1, direction="event",
                                payload={"text": "a\nb"})
        assert "\n" not in entry.to_json()


class TestRecorderCapture:
    def test_wrap_session_records_both_sides(self):
        recorder = SessionRecorder()
        session = FakeSession()
        recorder.wrap_session(session)
        assert session.request("threads") == {"echo": "threads"}
        directions = [e.direction for e in recorder.entries()]
        assert directions == ["request", "response"]
        assert recorder.entries()[0].payload["command"] == "threads"
        assert recorder.entries()[1].payload["ok"] is True

    def test_wrap_is_idempotent(self):
        recorder = SessionRecorder()
        session = FakeSession()
        recorder.wrap_session(session)
        recorder.wrap_session(session)
        session.request("info")
        assert len(recorder.entries()) == 2  # not doubled

    def test_failures_recorded_and_reraised(self):
        recorder = SessionRecorder()
        session = FakeSession(fail=True)
        recorder.wrap_session(session)
        with pytest.raises(RuntimeError):
            session.request("boom")
        response = recorder.entries(direction="response")[0]
        assert response.payload["ok"] is False
        assert "RuntimeError" in response.payload["error"]

    def test_record_event(self):
        recorder = SessionRecorder()
        recorder.record_event(55, {"event": "stopped",
                                   "payload": {"x": 1}})
        entry = recorder.entries(direction="event")[0]
        assert entry.pid == 55
        assert entry.payload["event"] == "stopped"

    def test_filters(self):
        recorder = SessionRecorder()
        recorder.record(1, "request", {"command": "a"})
        recorder.record(2, "request", {"command": "b"})
        recorder.record(1, "event", {"event": "stopped"})
        assert len(recorder.entries(pid=1)) == 2
        assert len(recorder.entries(direction="request")) == 2
        assert len(recorder.entries(direction="request", pid=2)) == 1

    def test_timestamps_monotone(self):
        recorder = SessionRecorder()
        for i in range(5):
            recorder.record(1, "request", {"command": str(i)})
        stamps = [e.timestamp for e in recorder.entries()]
        assert stamps == sorted(stamps)


class TestPersistence:
    def test_save_load(self, tmp_path):
        recorder = SessionRecorder()
        recorder.record(1, "request", {"command": "info"})
        recorder.record(1, "response", {"command": "info", "ok": True})
        path = str(tmp_path / "t.jsonl")
        assert recorder.save(path) == 2
        loaded = SessionRecorder.load(path)
        assert [e.direction for e in loaded] == ["request", "response"]

    def test_saved_file_is_valid_jsonl(self, tmp_path):
        recorder = SessionRecorder()
        recorder.record(1, "event", {"event": "output"})
        path = str(tmp_path / "t.jsonl")
        recorder.save(path)
        with open(path) as fh:
            for line in fh:
                json.loads(line)

    def test_timeline_render(self):
        recorder = SessionRecorder()
        recorder.record(9, "request", {"command": "step"})
        recorder.record(9, "response", {"command": "step", "ok": False})
        recorder.record(9, "event", {"event": "resumed"})
        timeline = recorder.render_timeline()
        assert "-> step" in timeline
        assert "<- step [ERROR]" in timeline
        assert "** resumed" in timeline

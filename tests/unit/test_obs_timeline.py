"""Unit tests: post-mortem timeline assembly (repro.obs.timeline).

The satellite's edge cases: out-of-order / duplicated / truncated
black-box records, clock skew between processes, and subtrees whose
dumps are missing — holes must be explicit, never silent.
"""

import json

from repro.obs import timeline
from repro.obs.blackbox import SCHEMA_VERSION, BlackBoxDump, read_dump
from repro.obs.export import validate_trace


def make_dump(path="bb-test.jsonl", pid=100, records=()):
    dump = BlackBoxDump(path)
    for record in records:
        full = {"v": SCHEMA_VERSION, "wall": 1000.0, "mono": 10.0}
        full.update(record)
        full.setdefault("pid", pid) if record.get("kind") == "open" else None
        dump.records.append(full)
    return dump


def open_record(pid, trace=None, **extra):
    record = {"kind": "open", "pid": pid, "ppid": 1, "program": "worker",
              "labels": {}}
    if trace is not None:
        record["trace"] = trace
    record.update(extra)
    return record


def span(name, seq, mono, span_id=None, args=None, pid=100):
    record = {"name": name, "cat": "debug", "pid": pid, "tid": 1,
              "wall": 990.0 + mono, "mono": mono, "dur": 0.001,
              "seq": seq}
    if span_id is not None:
        record["id"] = span_id
    if args is not None:
        record["args"] = args
    return record


class TestSnapshotFromDump:
    def test_out_of_order_records_sorted_by_seq(self):
        dump = make_dump(records=[
            open_record(100),
            {"kind": "spans", "spans": [span("late", 5, 5.0)],
             "ring_dropped": 0},
            {"kind": "spans", "spans": [span("early", 1, 1.0)],
             "ring_dropped": 0},
        ])
        snap = timeline.snapshot_from_dump(dump)
        assert [s["name"] for s in snap["spans"]] == ["early", "late"]

    def test_duplicate_span_batches_deduped(self):
        # A force_flush right after an incremental flush can write the
        # same batch twice; span identity collapses them.
        batch = [span("once", 3, 3.0, span_id="sX")]
        dump = make_dump(records=[
            open_record(100),
            {"kind": "spans", "spans": batch, "ring_dropped": 0},
            {"kind": "spans", "spans": batch, "ring_dropped": 0},
        ])
        snap = timeline.snapshot_from_dump(dump)
        assert len(snap["spans"]) == 1

    def test_anchor_is_latest_record(self):
        dump = make_dump(records=[open_record(100)])
        dump.records[0]["wall"], dump.records[0]["mono"] = 1000.0, 10.0
        dump.records.append({"v": SCHEMA_VERSION, "kind": "marker",
                             "reason": "stop", "terminal": True,
                             "wall": 1060.0, "mono": 70.0})
        snap = timeline.snapshot_from_dump(dump)
        assert snap["clock"] == {"wall": 1060.0, "mono": 70.0}
        assert snap["terminal"] == "stop"

    def test_no_terminal_marker_reports_unclean(self):
        snap = timeline.snapshot_from_dump(
            make_dump(records=[open_record(100)]))
        assert snap["terminal"] == timeline.UNCLEAN

    def test_pidless_dump_is_skipped(self):
        dump = make_dump(records=[{"kind": "marker", "reason": "stop",
                                   "terminal": True}])
        assert timeline.snapshot_from_dump(dump) is None


class TestAssemble:
    def test_missing_subtree_is_an_explicit_hole(self):
        # The parent's bracket names child 222; nobody else speaks for it.
        parent = make_dump(pid=111, records=[
            open_record(111),
            {"kind": "spans", "ring_dropped": 0, "spans": [
                span("fork.bracket", 1, 1.0, span_id="sB", pid=111,
                     args={"child_pid": 222})]},
            {"kind": "marker", "reason": "stop", "terminal": True},
        ])
        doc = timeline.assemble([], [parent])
        other = doc["otherData"]
        assert other["holes"] == [222]
        assert 222 in other["processes"]
        hole_events = [e for e in doc["traceEvents"]
                       if e.get("name") == "blackbox:hole"]
        assert [e["pid"] for e in hole_events] == [222]
        assert validate_trace(doc) == []

    def test_expected_pids_force_holes(self):
        doc = timeline.assemble([], [], expected_pids=[555])
        assert doc["otherData"]["holes"] == [555]

    def test_clock_skew_does_not_reorder_within_process(self):
        # Process 300's wall clock is an hour ahead; its two spans must
        # still be 1s apart and in monotonic order after alignment.
        skewed = make_dump(pid=300, records=[
            open_record(300),
            {"kind": "spans", "ring_dropped": 0, "spans": [
                span("first", 1, 1.0, pid=300),
                span("second", 2, 2.0, pid=300)]},
            {"kind": "marker", "reason": "stop", "terminal": True,
             "wall": 1000.0 + 3600.0, "mono": 10.0},
        ])
        doc = timeline.assemble([], [skewed])
        spans = {e["name"]: e for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        delta_us = spans["second"]["ts"] - spans["first"]["ts"]
        assert abs(delta_us - 1e6) < 1.0

    def test_live_and_dump_merge_unions_spans(self):
        dumped = make_dump(pid=100, records=[
            open_record(100),
            {"kind": "spans", "ring_dropped": 0, "spans": [
                span("rolled-off", 1, 1.0, span_id="s1")]},
        ])
        live = {"pid": 100, "program": "worker",
                "clock": {"wall": 1000.0, "mono": 10.0},
                "spans": [span("still-live", 9, 9.0, span_id="s9")],
                "metrics": {}, "ringlog": []}
        doc = timeline.assemble([live], [dumped])
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"rolled-off", "still-live"} <= names
        other = doc["otherData"]
        assert other["sources"] == {"100": "merged"}
        # A process still answering telemetry has not terminated.
        assert "100" not in other["terminals"]

    def test_terminal_reasons_become_instant_events(self):
        dead = make_dump(pid=100, records=[
            open_record(100),
            {"kind": "marker", "reason": "detach:fork_handler_failed",
             "terminal": True},
        ])
        doc = timeline.assemble([], [dead])
        (event,) = [e for e in doc["traceEvents"]
                    if e["name"].startswith("terminal:")]
        assert event["name"] == "terminal:detach:fork_handler_failed"
        assert doc["otherData"]["terminals"] == {
            "100": "detach:fork_handler_failed"}

    def test_corrupt_lines_surface_in_other_data(self, tmp_path):
        path = tmp_path / "bb-1-abc.jsonl"
        lines = [
            json.dumps({"v": SCHEMA_VERSION, "kind": "open", "pid": 7,
                        "wall": 1.0, "mono": 1.0, "program": "w",
                        "labels": {}}),
            '{"kind": "spans", "spa',  # truncated by SIGKILL
        ]
        path.write_text("\n".join(lines) + "\n")
        doc = timeline.assemble([], [read_dump(str(path))])
        assert doc["otherData"]["corrupt_lines"] == 1

    def test_duplicate_dumps_for_one_pid_merge(self):
        first = make_dump(pid=100, records=[
            open_record(100),
            {"kind": "spans", "ring_dropped": 0,
             "spans": [span("a", 1, 1.0, span_id="sA")]},
        ])
        second = make_dump(pid=100, records=[
            open_record(100),
            {"kind": "spans", "ring_dropped": 0,
             "spans": [span("b", 2, 2.0, span_id="sB")]},
            {"kind": "marker", "reason": "stop", "terminal": True},
        ])
        doc = timeline.assemble([], [first, second])
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"a", "b"} <= names
        assert doc["otherData"]["processes"] == [100]

    def test_assemble_from_dir_tolerates_missing_dir(self):
        doc = timeline.assemble_from_dir(None)
        assert doc["traceEvents"] == []
        assert doc["otherData"]["holes"] == []

"""Unit tests: port-file rendezvous (repro.util.portfile)."""

import json
import os
import threading
import time

import pytest

from repro.util.errors import RendezvousError
from repro.util.portfile import (
    PortFile,
    PortFileWatcher,
    PortRecord,
    default_portfile_path,
)


def record(pid=100, parent=1, port=5000):
    return PortRecord(pid=pid, parent_pid=parent, host="127.0.0.1",
                      port=port, created_at=time.time())


class TestPortRecord:
    def test_json_roundtrip(self):
        rec = record()
        assert PortRecord.from_json(rec.to_json()) == rec

    def test_corrupt_json_raises(self):
        with pytest.raises(RendezvousError):
            PortRecord.from_json("{not json")

    def test_missing_field_raises(self):
        with pytest.raises(RendezvousError):
            PortRecord.from_json(json.dumps({"pid": 1}))


class TestPortFile:
    def test_announce_then_read(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        pf.announce(record(pid=1))
        pf.announce(record(pid=2))
        assert [r.pid for r in pf.read_all()] == [1, 2]

    def test_read_missing_file_is_empty(self, tmp_path):
        pf = PortFile(str(tmp_path / "nope"))
        assert pf.read_all() == []

    def test_remove_idempotent(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        pf.announce(record())
        pf.remove()
        pf.remove()  # second remove of a missing file must not raise
        assert pf.read_all() == []

    def test_file_is_private(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        pf.announce(record())
        mode = os.stat(pf.path).st_mode & 0o777
        assert mode == 0o600

    def test_concurrent_appends_from_threads(self, tmp_path):
        """O_APPEND writes below PIPE_BUF must never interleave."""
        pf = PortFile(str(tmp_path / "ports"))

        def announce_many(base):
            mine = PortFile(pf.path)  # separate instance, like a child
            for i in range(50):
                mine.announce(record(pid=base + i))

        threads = [threading.Thread(target=announce_many, args=(b,))
                   for b in (1000, 2000, 3000)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        pids = [r.pid for r in pf.read_all()]
        assert len(pids) == 150
        assert len(set(pids)) == 150


class TestPortFileWatcher:
    def test_poll_once_sees_new_records_exactly_once(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        seen = []
        watcher = PortFileWatcher(portfile=pf, on_record=seen.append)
        pf.announce(record(pid=11))
        assert [r.pid for r in watcher.poll_once()] == [11]
        assert watcher.poll_once() == []  # no duplicates
        pf.announce(record(pid=12))
        assert [r.pid for r in watcher.poll_once()] == [12]
        assert [r.pid for r in seen] == [11, 12]

    def test_background_thread_delivers(self, tmp_path, waiter):
        pf = PortFile(str(tmp_path / "ports"))
        seen = []
        watcher = PortFileWatcher(portfile=pf, on_record=seen.append,
                                  poll_interval=0.005)
        watcher.start()
        try:
            pf.announce(record(pid=77))
            waiter(lambda: len(seen) == 1, message="watcher callback")
            assert seen[0].pid == 77
        finally:
            watcher.stop()

    def test_double_start_rejected(self, tmp_path):
        watcher = PortFileWatcher(portfile=PortFile(str(tmp_path / "p")),
                                  on_record=lambda r: None)
        watcher.start()
        try:
            with pytest.raises(RendezvousError):
                watcher.start()
        finally:
            watcher.stop()

    def test_wait_for_pid(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        watcher = PortFileWatcher(portfile=pf, on_record=lambda r: None)

        def announce_later():
            time.sleep(0.05)
            pf.announce(record(pid=42))

        thread = threading.Thread(target=announce_later)
        thread.start()
        rec = watcher.wait_for_pid(42, timeout=2.0)
        thread.join()
        assert rec.pid == 42

    def test_wait_for_pid_times_out(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        watcher = PortFileWatcher(portfile=pf, on_record=lambda r: None)
        with pytest.raises(RendezvousError):
            watcher.wait_for_pid(999, timeout=0.1)

    def test_corrupt_line_does_not_kill_watcher(self, tmp_path, waiter):
        pf = PortFile(str(tmp_path / "ports"))
        seen = []
        watcher = PortFileWatcher(portfile=pf, on_record=seen.append,
                                  poll_interval=0.005)
        watcher.start()
        try:
            with open(pf.path, "a", encoding="utf-8") as fh:
                fh.write("garbage line\n")
            time.sleep(0.05)
            # A valid record written later must still be delivered...
            # after repairing the file (real writers only append whole
            # JSON lines; a corrupt line would keep raising).
            os.unlink(pf.path)
            pf.announce(record(pid=5))
            waiter(lambda: len(seen) == 1, message="recovery after corrupt")
        finally:
            watcher.stop()


def test_default_path_is_per_run():
    a = default_portfile_path("runA")
    b = default_portfile_path("runB")
    assert a != b
    assert "runA" in a


class TestPidAlive:
    def test_own_pid_is_alive(self):
        from repro.util.portfile import pid_alive
        assert pid_alive(os.getpid())

    def test_nonsense_pids_are_dead(self):
        from repro.util.portfile import pid_alive
        assert not pid_alive(0)
        assert not pid_alive(-1)
        assert not pid_alive(99999999)

    @pytest.mark.forks
    def test_reaped_child_is_dead(self):
        from repro.util.portfile import pid_alive
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        assert not pid_alive(pid)


class TestReapDead:
    def test_old_dead_record_reaped_live_kept(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        stale = PortRecord(pid=99999999, parent_pid=1, host="127.0.0.1",
                           port=1, created_at=time.time() - 60)
        live = record(pid=os.getpid())
        pf.announce(stale)
        pf.announce(live)
        reaped = pf.reap_dead(min_age=5.0)
        assert [r.pid for r in reaped] == [99999999]
        assert [r.pid for r in pf.read_all()] == [os.getpid()]

    def test_min_age_protects_newborns(self, tmp_path):
        """A freshly announced record is never a GC candidate, even if
        its pid probe says dead (the child may not have drawn breath)."""
        pf = PortFile(str(tmp_path / "ports"))
        fresh = PortRecord(pid=99999999, parent_pid=1, host="127.0.0.1",
                           port=1, created_at=time.time())
        pf.announce(fresh)
        assert pf.reap_dead(min_age=5.0) == []
        assert len(pf.read_all()) == 1

    def test_noop_reap_leaves_file_untouched(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        pf.announce(record(pid=os.getpid()))
        before = os.stat(pf.path).st_mtime_ns
        assert pf.reap_dead(min_age=0.0) == []
        assert os.stat(pf.path).st_mtime_ns == before


class TestWatcherLiveness:
    def test_dead_record_never_dialed_and_reaped(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        dead = PortRecord(pid=99999999, parent_pid=1, host="127.0.0.1",
                          port=1, created_at=time.time() - 60)
        live = record(pid=os.getpid())
        pf.announce(dead)
        pf.announce(live)
        seen = []
        watcher = PortFileWatcher(portfile=pf, on_record=seen.append,
                                  gc_interval=0.001)
        fresh = watcher.poll_once()
        assert [r.pid for r in fresh] == [os.getpid()]
        assert [r.pid for r in seen] == [os.getpid()]
        # the corpse was reaped from the file and forgotten, so a
        # recycled pid's future record would be dialed afresh
        assert [r.pid for r in pf.read_all()] == [os.getpid()]
        assert 99999999 not in watcher._seen

    def test_gc_off_by_default_dials_everything(self, tmp_path):
        """The primitive layer stays policy-free: without gc_interval,
        even a dead pid's record is delivered (tests forge these)."""
        pf = PortFile(str(tmp_path / "ports"))
        dead = PortRecord(pid=99999999, parent_pid=1, host="127.0.0.1",
                          port=1, created_at=time.time() - 60)
        pf.announce(dead)
        seen = []
        watcher = PortFileWatcher(portfile=pf, on_record=seen.append)
        watcher.poll_once()
        assert [r.pid for r in seen] == [99999999]
        assert len(pf.read_all()) == 1


class TestTombstones:
    def test_tombstone_masks_older_record(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        pf.announce(record(pid=os.getpid()))
        pf.tombstone(os.getpid(), reason="exec")
        seen = []
        watcher = PortFileWatcher(portfile=pf, on_record=seen.append)
        assert watcher.poll_once() == []
        assert seen == []

    def test_reannounce_after_tombstone_is_dialed(self, tmp_path):
        """A recycled (or re-attached) pid announcing after its own
        tombstone is a fresh debuggee: dial it."""
        pf = PortFile(str(tmp_path / "ports"))
        pid = os.getpid()
        pf.announce(record(pid=pid, port=5000))
        seen = []
        watcher = PortFileWatcher(portfile=pf, on_record=seen.append)
        watcher.poll_once()
        pf.tombstone(pid, reason="daemonize")
        watcher.poll_once()
        fresh = PortRecord(pid=pid, parent_pid=1, host="127.0.0.1",
                           port=5001, created_at=time.time() + 1)
        pf.announce(fresh)
        watcher.poll_once()
        assert [(r.pid, r.port) for r in seen] == [(pid, 5000), (pid, 5001)]

    def test_reap_drops_tombstone_and_covered_records(self, tmp_path):
        """Tombstoned pids are reaped regardless of age or liveness —
        the tombstone says the debugger is gone for good."""
        pf = PortFile(str(tmp_path / "ports"))
        pf.announce(record(pid=os.getpid()))  # alive AND fresh
        pf.tombstone(os.getpid(), reason="detach")
        pf.announce(record(pid=123456789, port=6000))
        reaped = pf.reap_dead(min_age=3600.0)
        assert sorted({r.pid for r in reaped}) == [os.getpid()]
        assert [r.pid for r in pf.read_all()] == [123456789]

    def test_tombstone_state_roundtrips(self):
        rec = PortRecord(pid=7, parent_pid=1, host="", port=0,
                         created_at=time.time(), state="tombstone",
                         reason="exec")
        back = PortRecord.from_json(rec.to_json())
        assert back.tombstoned
        assert back.reason == "exec"

    def test_pre_tombstone_reader_compat(self):
        """Live records serialise without the state field, so a reader
        from before the tombstone era still parses them."""
        rec = record()
        assert "state" not in json.loads(rec.to_json())
        assert not PortRecord.from_json(rec.to_json()).tombstoned


class TestPortProbeGC:
    def test_execd_pid_reaped_after_two_strikes(self, tmp_path):
        """pid alive but debug port refusing: the debuggee exec'd away
        without a tombstone.  Two consecutive failed probes condemn it
        (one strike could be a watchdog mid-heal)."""
        import socket
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
        placeholder.close()  # nothing listens here any more
        pf = PortFile(str(tmp_path / "ports"))
        execd = PortRecord(pid=os.getpid(), parent_pid=1, host="127.0.0.1",
                           port=dead_port, created_at=time.time() - 60)
        pf.announce(execd)
        assert pf.reap_dead(min_age=5.0, probe_ports=True) == []  # strike 1
        reaped = pf.reap_dead(min_age=5.0, probe_ports=True)      # strike 2
        assert [r.pid for r in reaped] == [os.getpid()]
        assert pf.read_all() == []

    def test_listening_port_never_struck(self, tmp_path):
        import socket
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        try:
            port = server.getsockname()[1]
            pf = PortFile(str(tmp_path / "ports"))
            live = PortRecord(pid=os.getpid(), parent_pid=1,
                              host="127.0.0.1", port=port,
                              created_at=time.time() - 60)
            pf.announce(live)
            for _ in range(3):
                assert pf.reap_dead(min_age=5.0, probe_ports=True) == []
            assert len(pf.read_all()) == 1
        finally:
            server.close()

    def test_successful_probe_clears_strikes(self, tmp_path):
        """A watchdog heal between probes resets the clock: strike,
        then success, then strike again must NOT reap."""
        import socket
        pf = PortFile(str(tmp_path / "ports"))
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        rec = PortRecord(pid=os.getpid(), parent_pid=1, host="127.0.0.1",
                         port=port, created_at=time.time() - 60)
        pf.announce(rec)
        assert pf.reap_dead(min_age=5.0, probe_ports=True) == []  # strike 1
        server = socket.socket()
        server.bind(("127.0.0.1", port))
        server.listen(1)
        try:
            assert pf.reap_dead(min_age=5.0, probe_ports=True) == []  # clear
        finally:
            server.close()
        assert pf.reap_dead(min_age=5.0, probe_ports=True) == []  # strike 1
        assert len(pf.read_all()) == 1


class TestWatcherRedial:
    def test_new_port_for_known_pid_is_redialed(self, tmp_path):
        """Watchdog heal: same pid announces fresh coordinates — the
        old port is dead, the new one must be dialed."""
        pf = PortFile(str(tmp_path / "ports"))
        pid = os.getpid()
        pf.announce(record(pid=pid, port=5000))
        seen = []
        watcher = PortFileWatcher(portfile=pf, on_record=seen.append)
        watcher.poll_once()
        healed = PortRecord(pid=pid, parent_pid=1, host="127.0.0.1",
                            port=5001, created_at=time.time() + 1)
        pf.announce(healed)
        watcher.poll_once()
        assert [(r.pid, r.port) for r in seen] == [(pid, 5000), (pid, 5001)]

    def test_duplicate_announce_not_redialed(self, tmp_path):
        pf = PortFile(str(tmp_path / "ports"))
        pid = os.getpid()
        pf.announce(record(pid=pid, port=5000))
        seen = []
        watcher = PortFileWatcher(portfile=pf, on_record=seen.append)
        watcher.poll_once()
        dup = PortRecord(pid=pid, parent_pid=1, host="127.0.0.1",
                         port=5000, created_at=time.time() + 1)
        pf.announce(dup)
        watcher.poll_once()
        assert len(seen) == 1

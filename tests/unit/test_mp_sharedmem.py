"""Unit tests: mmap-backed shared memory (repro.mp.sharedmem)."""

import os

import pytest

from repro.mp.sharedmem import (
    SharedArray,
    SharedCounter,
    SharedMemoryError,
    SharedValue,
)


class TestSharedValue:
    def test_get_set(self):
        value = SharedValue("q", 42)
        assert value.get() == 42
        value.set(-7)
        assert value.value == -7
        value.close()

    def test_value_property_setter(self):
        value = SharedValue("d", 0.0)
        value.value = 2.5
        assert value.get() == 2.5
        value.close()

    def test_typecodes(self):
        for code, sample in (("q", 2**40), ("d", 3.25), ("i", -100),
                             ("B", 255)):
            value = SharedValue(code, sample)
            assert value.get() == sample
            value.close()

    def test_unknown_typecode(self):
        with pytest.raises(SharedMemoryError):
            SharedValue("x")

    def test_overflow_rejected(self):
        value = SharedValue("B", 0)
        with pytest.raises(SharedMemoryError):
            value.set(300)
        value.close()

    def test_use_after_close(self):
        value = SharedValue("q")
        value.close()
        with pytest.raises(SharedMemoryError):
            value.get()
        with pytest.raises(SharedMemoryError):
            value.set(1)

    @pytest.mark.forks
    def test_child_writes_visible_in_parent(self):
        """THE property: same physical page across fork (vs the §6.2
        queue, which is a frozen copy)."""
        value = SharedValue("q", 1)
        pid = os.fork()
        if pid == 0:
            value.set(777)
            os._exit(0)
        os.waitpid(pid, 0)
        assert value.get() == 777
        value.close()

    @pytest.mark.forks
    def test_parent_writes_visible_in_child(self):
        value = SharedValue("q", 0)
        gate_r, gate_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.read(gate_r, 1)  # wait for the parent's write
            os._exit(0 if value.get() == 123 else 1)
        value.set(123)
        os.write(gate_w, b"x")
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        value.close()
        os.close(gate_r)
        os.close(gate_w)


class TestSharedArray:
    def test_size_constructor(self):
        array = SharedArray("i", 5)
        assert len(array) == 5
        assert array.tolist() == [0] * 5
        array.close()

    def test_init_constructor(self):
        array = SharedArray("q", [3, 1, 4, 1, 5])
        assert array.tolist() == [3, 1, 4, 1, 5]
        array.close()

    def test_item_assignment_and_negative_index(self):
        array = SharedArray("i", 3)
        array[0] = 10
        array[-1] = 30
        assert array.tolist() == [10, 0, 30]
        array.close()

    def test_out_of_range(self):
        array = SharedArray("i", 2)
        with pytest.raises(SharedMemoryError):
            array[2]
        with pytest.raises(SharedMemoryError):
            array[-3] = 1
        array.close()

    def test_zero_length_rejected(self):
        with pytest.raises(SharedMemoryError):
            SharedArray("i", 0)

    def test_iteration(self):
        array = SharedArray("B", [1, 2, 3])
        assert list(array) == [1, 2, 3]
        array.close()

    @pytest.mark.forks
    def test_children_fill_disjoint_slots(self):
        array = SharedArray("q", 4)
        pids = []
        for i in range(4):
            pid = os.fork()
            if pid == 0:
                array[i] = (i + 1) * 11
                os._exit(0)
            pids.append(pid)
        for pid in pids:
            os.waitpid(pid, 0)
        assert array.tolist() == [11, 22, 33, 44]
        array.close()


class TestSharedCounter:
    def test_increment_and_get(self):
        counter = SharedCounter(10)
        assert counter.increment() == 11
        assert counter.increment(5) == 16
        assert counter.get() == 16
        counter.close()

    @pytest.mark.forks
    def test_cross_process_increments_lose_nothing(self):
        """Lock + shared slot: the read-modify-write races a bare
        SharedValue would lose are eliminated."""
        counter = SharedCounter(0)
        n_children, per_child = 4, 200
        pids = []
        for _ in range(n_children):
            pid = os.fork()
            if pid == 0:
                for _ in range(per_child):
                    counter.increment()
                os._exit(0)
            pids.append(pid)
        for pid in pids:
            os.waitpid(pid, 0)
        assert counter.get() == n_children * per_child
        counter.close()

"""Unit tests: safe value rendering (repro.util.serde)."""

from repro.util.serde import render_namespace, render_value


class TestAtomicValues:
    def test_int(self):
        assert render_value(42) == "42"

    def test_float(self):
        assert render_value(3.5) == "3.5"

    def test_bool_and_none(self):
        assert render_value(True) == "True"
        assert render_value(None) == "None"

    def test_short_string(self):
        assert render_value("hi") == "'hi'"

    def test_bytes(self):
        assert render_value(b"abc") == "b'abc'"


class TestTruncation:
    def test_long_string_clipped_with_marker(self):
        rendered = render_value("x" * 1000)
        assert len(rendered) < 1000
        assert "chars)" in rendered

    def test_long_list_clipped_with_count(self):
        rendered = render_value(list(range(100)))
        assert "items)" in rendered
        assert "99" not in rendered.split("...")[0]

    def test_deep_nesting_cut_at_depth(self):
        nested = [[[[["deep"]]]]]
        rendered = render_value(nested)
        assert "list" in rendered or "deep" not in rendered

    def test_custom_bounds(self):
        rendered = render_value(list(range(10)), max_items=3)
        assert "(+7 items)" in rendered


class TestContainers:
    def test_list(self):
        assert render_value([1, 2]) == "[1, 2]"

    def test_tuple_singleton_keeps_comma(self):
        assert render_value((1,)) == "(1,)"

    def test_dict(self):
        assert render_value({"a": 1}) == "{'a': 1}"

    def test_set(self):
        assert render_value({5}) == "{5}"

    def test_nested_mixed(self):
        rendered = render_value({"xs": [1, (2, 3)]})
        assert rendered == "{'xs': [1, (2, 3)]}"


class TestHostileObjects:
    def test_broken_repr_contained(self):
        class Broken:
            def __repr__(self):
                raise RuntimeError("nope")

        rendered = render_value(Broken())
        assert "unrepresentable" in rendered

    def test_broken_repr_inside_container(self):
        class Broken:
            def __repr__(self):
                raise ValueError("boom")

        rendered = render_value([1, Broken(), 3])
        assert "unrepresentable" in rendered

    def test_recursive_structure_bounded(self):
        xs = []
        xs.append(xs)
        rendered = render_value(xs)
        assert isinstance(rendered, str)  # must terminate


class TestRenderNamespace:
    def test_skips_dunder_names(self):
        namespace = {"__builtins__": {}, "x": 1}
        assert render_namespace(namespace) == {"x": "1"}

    def test_sorted_keys(self):
        namespace = {"b": 2, "a": 1}
        assert list(render_namespace(namespace)) == ["a", "b"]

    def test_keep_dunder_when_asked(self):
        namespace = {"__name__": "m"}
        assert "__name__" in render_namespace(namespace, skip_dunder=False)

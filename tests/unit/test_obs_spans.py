"""Unit tests: the span flight-recorder (repro.obs.spans)."""

import os
import threading
import time

import pytest

from repro.obs.spans import SpanRecorder


class TestRecording:
    def test_begin_end_records_duration(self):
        rec = SpanRecorder(capacity=16)
        token = rec.begin("work", cat="test")
        time.sleep(0.01)
        token.end()
        (span,) = rec.snapshot()
        assert span["name"] == "work"
        assert span["cat"] == "test"
        assert span["dur"] >= 0.01
        assert span["pid"] == os.getpid()
        assert span["tid"] == threading.get_ident()

    def test_context_manager(self):
        rec = SpanRecorder(capacity=4)
        with rec.span("cm", cat="test", key="v"):
            pass
        (span,) = rec.snapshot()
        assert span["name"] == "cm"
        assert span["args"] == {"key": "v"}

    def test_wall_and_mono_pair_recorded(self):
        rec = SpanRecorder(capacity=4)
        before_wall, before_mono = time.time(), time.monotonic()
        with rec.span("clocks"):
            pass
        (span,) = rec.snapshot()
        assert span["wall"] >= before_wall - 1.0
        assert span["mono"] >= before_mono - 1.0
        assert "dur" in span

    def test_ring_overflow_keeps_newest(self):
        rec = SpanRecorder(capacity=4)
        for i in range(10):
            rec.record(f"s{i}", "test", time.time(), time.monotonic(), 0.0)
        names = [s["name"] for s in rec.snapshot()]
        assert names == ["s6", "s7", "s8", "s9"]
        assert rec.dropped == 6

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)


class TestReset:
    def test_snapshot_reset_drains(self):
        rec = SpanRecorder(capacity=8)
        with rec.span("a"):
            pass
        assert len(rec.snapshot(reset=True)) == 1
        assert rec.snapshot() == []

    def test_reset_after_fork_clears_inherited_timeline(self):
        rec = SpanRecorder(capacity=8)
        with rec.span("parent-era"):
            pass
        rec.reset_after_fork()
        assert rec.snapshot() == []
        assert rec.dropped == 0
        with rec.span("child-era"):
            pass
        assert [s["name"] for s in rec.snapshot()] == ["child-era"]

    def test_reset_after_fork_survives_a_held_lock(self):
        # The fork may land while a parent thread is mid-record; the
        # child inherits that held lock and is single-threaded, so the
        # reset must replace it, never acquire it.
        rec = SpanRecorder(capacity=8)
        inherited = rec._lock
        inherited.acquire()
        try:
            rec.reset_after_fork()   # would deadlock on the old lock
        finally:
            inherited.release()
        assert rec._lock is not inherited
        with rec.span("child-era"):  # fresh lock must be usable
            pass
        assert [s["name"] for s in rec.snapshot()] == ["child-era"]


class TestThreadSafety:
    def test_concurrent_spans_all_complete(self):
        rec = SpanRecorder(capacity=4096)
        n_threads, n_spans = 6, 200
        barrier = threading.Barrier(n_threads)

        def worker(i):
            barrier.wait()
            for j in range(n_spans):
                with rec.span(f"t{i}"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        spans = rec.snapshot()
        assert len(spans) == n_threads * n_spans
        assert rec.dropped == 0

"""Unit tests: the crash black box (repro.obs.blackbox)."""

import json
import os

import pytest

from repro.obs import blackbox as bb
from repro.obs.spans import SpanRecorder


@pytest.fixture
def box(tmp_path):
    """A configured BlackBox on its own recorder, torn down after."""
    recorder = SpanRecorder(capacity=64)
    box = bb.BlackBox(recorder=recorder)
    box.configure(str(tmp_path), "unit-test", labels={"suite": "unit"})
    yield box
    box.configure(None, "unit-test")  # removes the flush hook


def read_lines(path):
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestDisabled:
    def test_noop_without_directory(self):
        box = bb.BlackBox(recorder=SpanRecorder(capacity=8))
        assert not box.enabled
        box.flush()
        box.force_flush("whatever", terminal=True)
        assert box.path is None

    def test_describe_shape(self, box):
        status = box.describe()
        assert status["enabled"] is True
        assert status["records"] == 0


class TestWriting:
    def test_open_record_written_on_first_flush(self, box, tmp_path):
        box._recorder.record("s", "t", 1.0, 1.0, 0.0)  # noqa: SLF001
        box.flush()
        records = read_lines(box.path)
        assert records[0]["kind"] == "open"
        assert records[0]["pid"] == os.getpid()
        assert records[0]["program"] == "unit-test"
        assert records[0]["labels"]["suite"] == "unit"
        assert "trace_id" in records[0]["trace"]
        assert all(r["v"] == bb.SCHEMA_VERSION for r in records)
        assert all("wall" in r and "mono" in r for r in records)

    def test_incremental_flush_drains_once(self, box):
        rec = box._recorder  # noqa: SLF001
        rec.record("a", "t", 1.0, 1.0, 0.0)
        box.flush()
        box.flush()  # nothing new: no second spans record
        kinds = [r["kind"] for r in read_lines(box.path)]
        assert kinds == ["open", "spans"]

    def test_force_flush_writes_marker_last(self, box):
        box.force_flush("stop", terminal=True)
        records = read_lines(box.path)
        marker = records[-1]
        assert marker["kind"] == "marker"
        assert marker["reason"] == "stop"
        assert marker["terminal"] is True

    def test_byte_budget_drops_payloads_not_markers(self, tmp_path):
        recorder = SpanRecorder(capacity=64)
        box = bb.BlackBox(recorder=recorder)
        box.configure(str(tmp_path), "budget", limit_bytes=1)
        recorder.record("fat", "t", 1.0, 1.0, 0.0,
                        {"blob": "x" * 512})
        box.force_flush("quarantine:h1")
        records = read_lines(box.path)
        kinds = [r["kind"] for r in records]
        assert "spans" not in kinds  # payload dropped: over budget
        assert kinds[-1] == "marker"  # the marker always lands
        assert box.describe()["payloads_dropped"] >= 1
        box.configure(None, "budget")

    def test_oserror_breaks_box_quietly(self, box):
        box.flush()  # open the fd
        os.close(box._fd)  # noqa: SLF001 - simulate a dying fd
        box._recorder.record("x", "t", 1.0, 1.0, 0.0)  # noqa: SLF001
        box.force_flush("stop")  # must not raise
        assert not box.enabled


class TestForkRotation:
    def test_reset_after_fork_rotates_identity(self, box):
        box.flush()
        old_path = box.path
        box.reset_after_fork(parent_pid=1234)
        assert box.path is None  # lazy: no I/O inside the bracket
        box.force_flush("stop")
        assert box.path != old_path
        records = read_lines(box.path)
        assert records[0]["kind"] == "open"
        assert records[0]["labels"]["parent_pid"] == 1234

    def test_reset_after_exec_names_predecessor(self, box):
        handoff = {"trace_id": "t1", "span_id": "s1"}
        box.reset_after_exec("new-image", exec_of=handoff)
        box.flush()
        box._recorder.record("x", "t", 1.0, 1.0, 0.0)  # noqa: SLF001
        box.flush()
        records = read_lines(box.path)
        assert records[0]["program"] == "new-image"
        assert records[0]["exec_of"] == handoff


class TestReadingBack:
    def test_read_dump_round_trip(self, box):
        box._recorder.record("a", "t", 1.0, 1.0, 0.0)  # noqa: SLF001
        box.force_flush("stop", terminal=True)
        dump = bb.read_dump(box.path)
        assert dump.pid == os.getpid()
        assert dump.terminal_reason() == "stop"
        assert dump.corrupt_lines == 0

    def test_truncated_last_line_is_counted_not_fatal(self, box):
        box.force_flush("stop", terminal=True)
        with open(box.path, "ab") as fh:
            fh.write(b'{"kind": "spans", "spa')  # SIGKILL mid-write
        dump = bb.read_dump(box.path)
        assert dump.corrupt_lines == 1
        assert dump.terminal_reason() == "stop"

    def test_alien_schema_is_counted_not_parsed(self, box):
        box.force_flush("stop")
        with open(box.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"v": 999, "kind": "marker",
                                 "reason": "future"}) + "\n")
        dump = bb.read_dump(box.path)
        assert dump.alien_schema == 1
        assert all(r["v"] == bb.SCHEMA_VERSION for r in dump.records)

    def test_missing_terminal_marker_means_unclean(self, box):
        box.flush()  # open record only — as after a SIGKILL
        dump = bb.read_dump(box.path)
        assert dump.terminal_reason() is None

    def test_scan_dir_ignores_foreign_files(self, box, tmp_path):
        box.force_flush("stop")
        (tmp_path / "notes.txt").write_text("not a dump")
        (tmp_path / "bb-zzz.log").write_text("wrong extension")
        dumps = bb.scan_dir(str(tmp_path))
        assert [d.path for d in dumps] == [box.path]

    def test_scan_dir_of_missing_directory(self, tmp_path):
        assert bb.scan_dir(str(tmp_path / "never-created")) == []

"""Unit tests: the trace-dispatch fast path and the settrace backend's
armed/disarmed hook lifecycle.

What the tentpole must guarantee, pinned here in-process:

* a quiet main thread physically drops its hook (demotion) and the
  re-arm signal restores it when a breakpoint appears from any thread;
* async suspend injects local traces only into debuggee frames, never
  into debugger-infrastructure or synthetic (``<...>``) frames; and
* a suspended-then-resumed thread returns to the fast path — its
  injected traces are stripped on continue and ``trace.local_installs``
  stops growing.
"""

import os
import signal
import sys
import threading
import time

import pytest

from repro.tracing.control import ResumeCommand
from repro.tracing.engine import TraceEngine
from repro.util.ids import UEId

from tests.unit.test_engine import BP_LINE, SRC, Scripted, loop_sum

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGURG"),
    reason="demotion lifecycle needs the SIGURG re-arm channel")


def wait_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


def _fastpath_engine(**kwargs):
    return TraceEngine(park_timeout=5.0, backend="settrace",
                       fastpath=True, **kwargs)


class TestDemotionLifecycle:
    def test_quiet_main_thread_demotes_on_first_call(self):
        engine = _fastpath_engine()
        engine.install()
        try:
            loop_sum(3)  # any call event on the quiet main thread
            assert sys.gettrace() is None, \
                "quiet main thread kept its hook (specializer stays off)"
            assert engine._main_demoted  # noqa: SLF001
        finally:
            engine.uninstall()

    def test_breakpoint_from_other_thread_rearms_via_signal(self):
        engine = _fastpath_engine()
        engine.install()
        try:
            loop_sum(3)
            assert sys.gettrace() is None
            threading.Thread(
                target=lambda: engine.breakpoints.add(SRC, BP_LINE)).start()
            # The add must re-arm THIS (main) thread even though the
            # mutation happened elsewhere: sync() signals SIGURG and the
            # handler lands here at the next bytecode checkpoint.
            wait_until(lambda: sys.gettrace() is not None,
                       message="main thread re-arm")
            assert not engine._main_demoted  # noqa: SLF001
        finally:
            engine.uninstall()

    def test_breakpoint_set_while_demoted_still_stops(self):
        script = Scripted(engine=_fastpath_engine())
        script.engine.install()
        try:
            loop_sum(3)
            assert sys.gettrace() is None
            threading.Thread(
                target=lambda: script.engine.breakpoints.add(
                    SRC, BP_LINE)).start()
            wait_until(lambda: sys.gettrace() is not None,
                       message="main thread re-arm")
            result = loop_sum(2)
        finally:
            script.engine.uninstall()
        assert result == 1
        assert len(script.stops) == 2
        assert all(s.reason == "breakpoint" for s in script.stops)

    def test_removing_last_breakpoint_demotes_again(self):
        script = Scripted(engine=_fastpath_engine())
        bp = script.engine.breakpoints.add(SRC, BP_LINE)
        script.engine.install()
        try:
            loop_sum(2)
            assert len(script.stops) == 2
            script.engine.breakpoints.remove(bp.id)
            loop_sum(2)  # quiet again: the next call event demotes
            assert sys.gettrace() is None
            assert len(script.stops) == 2
        finally:
            script.engine.uninstall()

    def test_uninstall_restores_signal_handler(self):
        before = signal.getsignal(signal.SIGURG)
        engine = _fastpath_engine()
        engine.install()
        assert signal.getsignal(signal.SIGURG) is not before
        engine.uninstall()
        assert signal.getsignal(signal.SIGURG) is before


def _spin(flag, ready):
    count = 0
    ready.set()
    while not flag.is_set():
        count += 1
    return count


class TestSuspendInjection:
    def test_injection_skips_synthetic_and_debugger_frames(self):
        engine = _fastpath_engine()
        namespace = {}
        exec(compile("def fake_outer(fn):\n    return fn()\n",
                     "<dionea-test>", "exec"), namespace)
        flag, ready = threading.Event(), threading.Event()
        worker = threading.Thread(
            target=namespace["fake_outer"],
            args=(lambda: _spin(flag, ready),))
        worker.start()
        try:
            ready.wait(5.0)
            frame = sys._current_frames()[worker.ident]  # noqa: SLF001
            engine._inject_frames(frame)  # noqa: SLF001
            injected, skipped = [], []
            current = sys._current_frames()[worker.ident]  # noqa: SLF001
            while current is not None:
                name = current.f_code.co_name
                if current.f_trace is engine._local_fn:  # noqa: SLF001
                    injected.append(name)
                else:
                    skipped.append(name)
                current = current.f_back
            assert "_spin" in injected
            assert "fake_outer" in skipped, \
                "synthetic '<...>' frame must never carry a local trace"
            assert engine.local_installs == len(injected)
        finally:
            flag.set()
            worker.join(5.0)

    def test_suspended_then_resumed_thread_returns_to_fastpath(self):
        engine = _fastpath_engine()
        stops = []

        def on_stop(ue, capture):
            stops.append(capture)
            threading.Thread(
                target=lambda: engine.controller.release(
                    ue, ResumeCommand(action="continue"))).start()

        engine.on_stop = on_stop
        flag, ready = threading.Event(), threading.Event()
        worker = threading.Thread(target=_spin, args=(flag, ready))
        engine.install()
        try:
            worker.start()
            ready.wait(5.0)
            ue = UEId(os.getpid(), worker.ident)
            assert engine.local_installs == 0
            engine.request_suspend(ue)
            wait_until(lambda: stops, message="suspend stop")
            assert engine.local_installs > 0
            installs_at_resume = engine.local_installs
            # After the continue the worker spins on unhooked frames
            # again: its injected local traces must be stripped...
            def spin_frame_clean():
                frame = sys._current_frames().get(  # noqa: SLF001
                    worker.ident)
                while frame is not None:
                    if frame.f_trace is engine._local_fn:  # noqa: SLF001
                        return False
                    frame = frame.f_back
                return True

            wait_until(spin_frame_clean, message="local traces stripped")
            # ...and the installs counter must sit still while it runs.
            time.sleep(0.1)
            assert engine.local_installs == installs_at_resume
            assert len(stops) == 1
            assert stops[0].reason == "suspend"
        finally:
            flag.set()
            worker.join(5.0)
            engine.uninstall()

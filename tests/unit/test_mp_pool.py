"""Unit tests: the forked worker pool (repro.mp.pool)."""

import os
import time

import pytest

from repro.mp.pool import Pool, RemoteError, _run_chunk
from repro.util.errors import PoolError

pytestmark = pytest.mark.forks


def square(x):
    return x * x


def crash(x):
    raise ValueError(f"task {x} failed")


def slow_identity(x):
    time.sleep(0.05)
    return x


def whoami(_x):
    return os.getpid()


class TestMap:
    def test_map_preserves_order(self):
        with Pool(3) as pool:
            assert pool.map(square, range(20)) == [x * x for x in range(20)]

    def test_map_with_chunksize(self):
        with Pool(2) as pool:
            assert pool.map(square, range(10), chunksize=4) == \
                [x * x for x in range(10)]

    def test_map_empty_iterable(self):
        with Pool(2) as pool:
            assert pool.map(square, []) == []

    def test_invalid_chunksize(self):
        with Pool(1) as pool:
            with pytest.raises(PoolError):
                pool.map(square, [1], chunksize=0)

    def test_work_spreads_across_processes(self):
        with Pool(4) as pool:
            pids = set(pool.map(whoami, range(40)))
        assert len(pids) >= 2
        assert os.getpid() not in pids  # really ran in children


class TestApply:
    def test_apply_returns_value(self):
        with Pool(2) as pool:
            assert pool.apply(square, (7,)) == 49

    def test_apply_async_handle(self):
        with Pool(2) as pool:
            handle = pool.apply_async(square, (6,))
            assert handle.get(timeout=5.0) == 36
            assert handle.ready() and handle.successful()
            assert handle.worker_pid in pool.worker_pids()

    def test_async_result_not_ready_initially(self):
        with Pool(1) as pool:
            handle = pool.apply_async(slow_identity, (1,))
            with pytest.raises(PoolError):
                handle.successful()
            handle.get(5.0)

    def test_get_timeout(self):
        with Pool(1) as pool:
            handle = pool.apply_async(time.sleep, (2.0,))
            with pytest.raises(PoolError):
                handle.get(timeout=0.1)
            handle.get(timeout=10.0)


class TestErrors:
    def test_remote_exception_raised_with_traceback(self):
        with Pool(2) as pool:
            with pytest.raises(RemoteError) as exc_info:
                pool.apply(crash, (3,))
        assert "task 3 failed" in str(exc_info.value)
        assert "ValueError" in exc_info.value.remote_traceback

    def test_pool_survives_task_errors(self):
        with Pool(2) as pool:
            with pytest.raises(RemoteError):
                pool.apply(crash, (1,))
            assert pool.apply(square, (4,)) == 16

    def test_submit_after_close_rejected(self):
        pool = Pool(1)
        pool.close()
        with pytest.raises(PoolError):
            pool.apply_async(square, (1,))
        pool.join(5.0)

    def test_join_before_close_rejected(self):
        pool = Pool(1)
        try:
            with pytest.raises(PoolError):
                pool.join()
        finally:
            pool.close()
            pool.join(5.0)


class TestShutdown:
    def test_close_join_reaps_workers(self):
        pool = Pool(3)
        pids = pool.worker_pids()
        pool.map(square, range(6))
        pool.close()
        pool.join(5.0)
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: really gone

    def test_terminate_kills_workers(self):
        pool = Pool(2)
        pool.apply_async(time.sleep, (30,))
        time.sleep(0.1)
        pids = pool.worker_pids()
        pool.terminate()
        time.sleep(0.2)
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)

    def test_initializer_runs_in_workers(self):
        init_flag = "/tmp/pool-init-%d" % os.getpid()

        def initializer(path):
            with open(path + f".{os.getpid()}", "w") as fh:
                fh.write("up")

        import glob
        pool = Pool(2, initializer=initializer, initargs=(init_flag,))
        pool.map(square, range(4))
        pool.close()
        pool.join(5.0)
        files = glob.glob(init_flag + ".*")
        assert len(files) == 2
        for path in files:
            os.unlink(path)


class TestChunkRunner:
    def test_run_chunk(self):
        assert _run_chunk(square, [1, 2, 3]) == [1, 4, 9]

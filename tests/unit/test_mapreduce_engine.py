"""Unit tests: the MapReduce engine (repro.mapreduce.engine)."""

import pytest

from repro.corpus import generate_corpus, get_profile
from repro.mapreduce import (
    MapReduceEngine,
    MapReduceJob,
    map_wordcount,
    merge_counts,
    reduce_wordcount,
    run_wordcount,
)
from repro.util.errors import PoolError

pytestmark = pytest.mark.forks


def map_lengths(item):
    """Toy mapper: word → its length (last one wins in reduce)."""
    return {word: len(word) for word in item.split()}


def reduce_max(key, values):
    return max(values)


class TestEngine:
    def test_wordcount_matches_serial_reference(self):
        docs = generate_corpus(get_profile("tiny"))
        expected = merge_counts(map_wordcount(d) for d in docs)
        got = run_wordcount(docs, n_workers=3, timeout=30)
        assert got == expected

    def test_custom_job(self):
        engine = MapReduceEngine(n_workers=2, chunksize=2)
        job = MapReduceJob(map_func=map_lengths, reduce_func=reduce_max)
        result = engine.run(job, ["aa bbb", "bbb cccc", "aa"], timeout=30)
        assert result == {"aa": 2, "bbb": 3, "cccc": 4}

    def test_empty_inputs(self):
        engine = MapReduceEngine(n_workers=2)
        job = MapReduceJob(map_func=map_lengths, reduce_func=reduce_max)
        assert engine.run(job, [], timeout=30) == {}

    def test_single_worker(self):
        docs = generate_corpus(get_profile("tiny"))
        expected = merge_counts(map_wordcount(d) for d in docs)
        assert run_wordcount(docs, n_workers=1, timeout=30) == expected

    def test_chunksize_does_not_change_result(self):
        docs = generate_corpus(get_profile("tiny"))
        a = run_wordcount(docs, n_workers=2, chunksize=1, timeout=30)
        b = run_wordcount(docs, n_workers=2, chunksize=5, timeout=30)
        assert a == b

    def test_invalid_worker_count(self):
        with pytest.raises(PoolError):
            MapReduceEngine(n_workers=0)


class TestStats:
    def test_stats_populated(self):
        docs = generate_corpus(get_profile("tiny"))
        engine = MapReduceEngine(n_workers=3, chunksize=2)
        job = MapReduceJob(map_func=map_wordcount,
                           reduce_func=reduce_wordcount)
        result = engine.run(job, docs, timeout=30)
        stats = engine.last_stats
        assert stats.inputs == len(docs)
        assert stats.map_tasks == (len(docs) + 1) // 2
        assert stats.distinct_keys == len(result)
        assert len(stats.worker_pids) == 3
        assert sum(stats.map_worker_spread.values()) == stats.map_tasks

    def test_multiple_workers_participate(self):
        """The shared-queue property behind §6.3's work stealing."""
        docs = generate_corpus(get_profile("small"))
        engine = MapReduceEngine(n_workers=4, chunksize=1)
        job = MapReduceJob(map_func=map_wordcount,
                           reduce_func=reduce_wordcount)
        engine.run(job, docs, timeout=60)
        assert len(engine.last_stats.map_worker_spread) >= 2

"""Unit tests: corpus generation (repro.corpus)."""

import os
import random

import pytest

from repro.corpus import (
    PROFILES,
    corpus_stats,
    generate_corpus,
    generate_file_text,
    generate_line,
    get_profile,
    is_countable,
    is_reserved,
    make_vocabulary,
    write_corpus,
)
from repro.util.errors import CorpusError


class TestReserved:
    def test_python_keywords_reserved(self):
        assert is_reserved("def") and is_reserved("while")

    def test_c_keywords_reserved(self):
        assert is_reserved("struct") and is_reserved("sizeof")

    def test_rust_keywords_reserved(self):
        assert is_reserved("impl") and is_reserved("trait")

    def test_identifier_not_reserved(self):
        assert not is_reserved("counter")

    def test_countable_predicate(self):
        assert is_countable("frequency")
        assert not is_countable("while")       # reserved
        assert not is_countable("abc123")      # not only letters
        assert not is_countable("")            # empty


class TestVocabulary:
    def test_size_and_uniqueness(self):
        words = make_vocabulary(random.Random(1), 500)
        assert len(words) == 500
        assert len(set(words)) == 500

    def test_all_alpha_lowercase(self):
        for word in make_vocabulary(random.Random(2), 100):
            assert word.isalpha() and word.islower()

    def test_deterministic_for_seed(self):
        a = make_vocabulary(random.Random(42), 50)
        b = make_vocabulary(random.Random(42), 50)
        assert a == b

    def test_bad_size_rejected(self):
        with pytest.raises(CorpusError):
            make_vocabulary(random.Random(1), 0)


class TestGeneration:
    def test_line_has_tokens(self):
        vocab = make_vocabulary(random.Random(3), 50)
        line = generate_line(random.Random(4), vocab)
        assert line.strip()

    def test_file_text_deterministic(self):
        vocab = make_vocabulary(random.Random(3), 50)
        assert generate_file_text(9, 20, vocab) == \
            generate_file_text(9, 20, vocab)

    def test_file_text_line_count(self):
        vocab = make_vocabulary(random.Random(3), 50)
        text = generate_file_text(9, 25, vocab)
        assert text.count("\n") == 25


class TestProfiles:
    def test_known_profiles_exist(self):
        for name in ("dionea", "rust", "linux", "tiny"):
            assert name in PROFILES

    def test_sizes_ordered_like_the_paper(self):
        """small (dionea) < medium (rust) < large (linux)."""
        assert (PROFILES["dionea"].approx_lines
                < PROFILES["rust"].approx_lines
                < PROFILES["linux"].approx_lines)
        # byte-level check on the small generated profiles
        tiny = corpus_stats(get_profile("tiny"))
        small = corpus_stats(get_profile("small"))
        assert tiny["bytes"] < small["bytes"]

    def test_unknown_profile_rejected(self):
        with pytest.raises(CorpusError):
            get_profile("windows")

    def test_corpus_deterministic(self):
        profile = get_profile("tiny")
        assert generate_corpus(profile) == generate_corpus(profile)

    def test_corpus_shape(self):
        profile = get_profile("tiny")
        files = generate_corpus(profile)
        assert len(files) == profile.n_files
        for path, text in files:
            assert path.endswith(".src")
            assert text.count("\n") == profile.lines_per_file


class TestWriteCorpus:
    def test_materialises_on_disk(self, tmp_path):
        profile = get_profile("tiny")
        paths = write_corpus(profile, str(tmp_path))
        assert len(paths) == profile.n_files
        for path in paths:
            assert os.path.isfile(path)
        in_memory = dict(generate_corpus(profile))
        rel = os.path.relpath(paths[0], os.path.join(str(tmp_path), "tiny"))
        with open(paths[0], encoding="utf-8") as fh:
            assert fh.read() == in_memory[rel.replace(os.sep, "/")]

"""Unit tests: the fork-based Process (repro.mp.process)."""

import os
import signal
import time

import pytest

from repro.mp.process import Process, active_children
from repro.mp.queues import Queue
from repro.util.errors import PoolError

pytestmark = pytest.mark.forks


def _exit_with(code):
    os._exit(code)


class TestLifecycle:
    def test_start_join_exitcode(self):
        proc = Process(target=lambda: None)
        proc.start()
        proc.join(5.0)
        assert proc.exitcode == 0
        assert not proc.is_alive()

    def test_target_receives_args(self):
        q = Queue()
        proc = Process(target=lambda a, b: q.put(a + b), args=(2, 3))
        proc.start()
        assert q.get(timeout=5.0) == 5
        proc.join(5.0)
        q.close()

    def test_kwargs(self):
        q = Queue()
        proc = Process(target=lambda x=0: q.put(x), kwargs={"x": 9})
        proc.start()
        assert q.get(timeout=5.0) == 9
        proc.join(5.0)
        q.close()

    def test_double_start_rejected(self):
        proc = Process(target=lambda: None)
        proc.start()
        with pytest.raises(PoolError):
            proc.start()
        proc.join(5.0)

    def test_join_before_start_rejected(self):
        with pytest.raises(PoolError):
            Process(target=lambda: None).join()

    def test_names_are_unique(self):
        a, b = Process(), Process()
        assert a.name != b.name

    def test_run_override(self):
        q = Queue()

        class Custom(Process):
            def run(self):
                q.put("custom-run")

        proc = Custom()
        proc.start()
        assert q.get(timeout=5.0) == "custom-run"
        proc.join(5.0)
        q.close()


class TestExitCodes:
    def test_exception_in_target_gives_exitcode_1(self):
        import sys
        # silence the child's traceback on our captured stderr
        proc = Process(target=lambda: (_ for _ in ()).throw(
            RuntimeError("child boom")))
        proc.start()
        proc.join(5.0)
        assert proc.exitcode == 1

    def test_system_exit_code_propagates(self):
        proc = Process(target=lambda: (_ for _ in ()).throw(SystemExit(5)))
        proc.start()
        proc.join(5.0)
        assert proc.exitcode == 5

    def test_os_exit_propagates(self):
        proc = Process(target=_exit_with, args=(17,))
        proc.start()
        proc.join(5.0)
        assert proc.exitcode == 17

    def test_terminate_gives_negative_signal(self):
        proc = Process(target=time.sleep, args=(30,))
        proc.start()
        time.sleep(0.05)
        proc.terminate()
        proc.join(5.0)
        assert proc.exitcode == -signal.SIGTERM

    def test_kill(self):
        proc = Process(target=time.sleep, args=(30,))
        proc.start()
        proc.kill()
        proc.join(5.0)
        assert proc.exitcode == -signal.SIGKILL


class TestJoinSemantics:
    def test_join_timeout_returns_while_alive(self):
        proc = Process(target=time.sleep, args=(1.0,))
        proc.start()
        start = time.monotonic()
        proc.join(timeout=0.1)
        assert time.monotonic() - start < 0.5
        assert proc.is_alive()
        proc.terminate()
        proc.join(5.0)

    def test_is_alive_transitions(self):
        proc = Process(target=time.sleep, args=(0.2,))
        proc.start()
        assert proc.is_alive()
        proc.join(5.0)
        assert not proc.is_alive()

    def test_exitcode_none_while_running(self):
        proc = Process(target=time.sleep, args=(0.3,))
        proc.start()
        assert proc.exitcode is None
        proc.join(5.0)
        assert proc.exitcode == 0


class TestActiveChildren:
    def test_tracks_started_children(self):
        procs = [Process(target=time.sleep, args=(0.3,)) for _ in range(3)]
        for p in procs:
            p.start()
        assert len(active_children()) >= 3
        for p in procs:
            p.join(5.0)
        assert all(p not in active_children() for p in procs)

"""Unit: resumable non-blocking framing buffers (the reactor seam).

The client reactor's I/O correctness reduces to two properties:

* :class:`SendBuffer` — no byte is ever re-sent or dropped, no matter
  where the kernel (or an injected fault) cuts a write;
* :class:`RecvBuffer` — frames reassemble no matter how reads fragment,
  and EOF is only "orderly" on a frame boundary.

Both are proven here against scripted sockets and against the testkit's
``net.frame.send`` / ``net.frame.recv`` injection points (short I/O and
EINTR schedules), so the stress tier's fault schedules exercise the same
resume paths the selector loop runs in production.
"""

import pytest

from repro.testkit import faults
from repro.util.errors import FramingError
from repro.util.framing import (
    FrameDecoder,
    RecvBuffer,
    SendBuffer,
    encode_frame,
)


class ScriptedSendSocket:
    """Accepts at most *accept* bytes per send; then follows a script."""

    def __init__(self, script=None):
        #: per-call behavior: int = accept that many bytes,
        #: an exception class = raise it once
        self.script = list(script or [])
        self.sent = bytearray()
        self.calls = 0

    def send(self, data) -> int:
        self.calls += 1
        step = self.script.pop(0) if self.script else 1 << 20
        if isinstance(step, type) and issubclass(step, BaseException):
            raise step()
        n = min(len(data), step)
        self.sent.extend(bytes(data[:n]))
        return n


class ScriptedRecvSocket:
    """Returns scripted chunks; [] means EAGAIN, b"" means EOF."""

    def __init__(self, chunks):
        self.chunks = list(chunks)

    def recv(self, budget: int) -> bytes:
        if not self.chunks:
            raise BlockingIOError()
        step = self.chunks.pop(0)
        if isinstance(step, type) and issubclass(step, BaseException):
            raise step()
        return bytes(step[:budget])


def decoded(data: bytes):
    decoder = FrameDecoder()
    decoder.feed(data)
    return list(decoder.messages())


@pytest.fixture(autouse=True)
def clean_faults():
    faults.registry().reset()
    yield
    faults.registry().reset()


class TestSendBuffer:
    def test_short_writes_resume_without_loss_or_dup(self):
        buf = SendBuffer()
        m1, m2 = {"n": 1, "pad": "x" * 100}, {"n": 2}
        buf.append_message(m1)
        buf.append_message(m2)
        # 3 bytes per call, EAGAIN every few calls: many pump resumes.
        sock = ScriptedSendSocket(
            script=[3, 3, BlockingIOError, 3, 3, 3, BlockingIOError] + [3] * 200)
        pumps = 0
        while not buf.pump(sock):
            pumps += 1
            assert pumps < 500, "pump made no progress"
        assert buf.pending_bytes == 0
        assert decoded(bytes(sock.sent)) == [m1, m2]

    def test_append_while_partially_sent_keeps_order(self):
        buf = SendBuffer()
        m1, m2 = {"first": True}, {"second": True}
        buf.append_message(m1)
        sock = ScriptedSendSocket(script=[2, BlockingIOError])
        assert buf.pump(sock) is False        # 2 bytes of m1 went out
        buf.append_message(m2)                # queued behind the tail
        assert buf.pump(sock) is True
        assert decoded(bytes(sock.sent)) == [m1, m2]

    def test_injected_eintr_is_resume_not_loss(self):
        buf = SendBuffer()
        message = {"payload": "y" * 64}
        buf.append_message(message)
        with faults.armed("net.frame.send", faults.Fault.eintr(),
                          faults.Schedule.on_hits(1)):
            sock = ScriptedSendSocket()
            assert buf.pump(sock) is False    # EINTR parks the frame
            assert buf.pending_bytes > 0
            assert buf.pump(sock) is True     # resumes cleanly
        assert decoded(bytes(sock.sent)) == [message]

    def test_injected_partial_budget_still_drains(self):
        buf = SendBuffer()
        message = {"k": "z" * 50}
        buf.append_message(message)
        with faults.armed("net.frame.send", faults.Fault.partial(1),
                          faults.Schedule.always()):
            sock = ScriptedSendSocket()
            assert buf.pump(sock) is True     # loops 1 byte at a time
        assert sock.calls >= len(encode_frame(message))
        assert decoded(bytes(sock.sent)) == [message]

    def test_peer_close_mid_send_raises(self):
        buf = SendBuffer()
        buf.append_message({"a": 1})
        sock = ScriptedSendSocket(script=[0])  # send() returning 0 = gone
        with pytest.raises(FramingError):
            buf.pump(sock)


class TestRecvBuffer:
    def test_byte_at_a_time_reassembly(self):
        m1, m2 = {"hello": 1}, {"world": [1, 2, 3]}
        wire = encode_frame(m1) + encode_frame(m2)
        buf = RecvBuffer()
        got = []
        sock = ScriptedRecvSocket([wire[i:i + 1] for i in range(len(wire))])
        while True:
            messages, eof = buf.pump(sock)
            got.extend(messages)
            assert not eof
            if len(got) == 2:
                break
        assert got == [m1, m2]
        assert buf.pending_bytes == 0

    def test_eof_on_frame_boundary_is_orderly(self):
        message = {"bye": True}
        buf = RecvBuffer()
        sock = ScriptedRecvSocket([encode_frame(message), b""])
        got = []
        eof = False
        while not eof:
            messages, eof = buf.pump(sock)
            got.extend(messages)
        assert got == [message]
        assert eof is True

    def test_eof_mid_frame_raises(self):
        wire = encode_frame({"cut": "short"})
        buf = RecvBuffer()
        sock = ScriptedRecvSocket([wire[:len(wire) - 2], b""])
        with pytest.raises(FramingError):
            while True:
                _messages, eof = buf.pump(sock)
                assert not eof

    def test_injected_eintr_ends_pump_keeps_bytes(self):
        message = {"resume": "me"}
        wire = encode_frame(message)
        buf = RecvBuffer()
        sock = ScriptedRecvSocket([wire[:3], wire[3:]])
        with faults.armed("net.frame.recv", faults.Fault.eintr(),
                          faults.Schedule.on_hits(2)):
            messages, eof = buf.pump(sock)   # reads first 3 bytes
            assert messages == [] and eof is False
            assert buf.pending_bytes == 3
            messages, eof = buf.pump(sock)   # EINTR: parked, not lost
            assert messages == [] and eof is False
            assert buf.pending_bytes == 3
            messages, eof = buf.pump(sock)   # resumes with the tail
            assert messages == [message]

    def test_injected_short_reads_reassemble(self):
        message = {"tiny": "budget", "pad": "p" * 40}
        wire = encode_frame(message)
        buf = RecvBuffer()
        # One big chunk available, but the fault clamps every recv to 1
        # byte — the frame must still reassemble across the clamped reads.
        sock = ScriptedRecvSocket([wire[i:i + 1] for i in range(len(wire))])
        with faults.armed("net.frame.recv", faults.Fault.partial(1),
                          faults.Schedule.always()):
            got = []
            while not got:
                messages, eof = buf.pump(sock)
                got.extend(messages)
                assert not eof
        assert got == [message]

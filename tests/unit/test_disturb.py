"""Unit tests: disturb mode (repro.core.disturb)."""

from repro.core.disturb import DisturbMode
from repro.util.ids import UEId

MAIN = UEId(100, 1)
THREAD = UEId(100, 2)
CHILD = UEId(200, 7)


class TestPrimaryExemption:
    def test_first_checked_ue_becomes_primary_and_is_exempt(self):
        mode = DisturbMode(enabled=True)
        mode._seen.clear()  # noqa: SLF001 - bypass the enable snapshot
        assert mode.check(MAIN, None) is None  # learns the primary
        assert mode.check(MAIN, None) is None  # stays exempt

    def test_explicit_primary(self):
        mode = DisturbMode(enabled=True)
        mode.mark_primary(MAIN)
        assert mode.check(MAIN, None) is None
        assert mode.check(THREAD, None) == "disturb"

    def test_enable_snapshot_exempts_live_threads(self):
        """UEs alive at enable time are not 'newly created'."""
        import threading
        mode = DisturbMode()
        mode.mark_primary(MAIN)
        mode.set_enabled(True)
        me = UEId.current()
        assert mode.check(me, None) is None  # I existed before enable


class TestToggling:
    def test_disabled_by_default(self):
        mode = DisturbMode()
        mode.mark_primary(MAIN)
        assert not mode.enabled
        assert mode.check(THREAD, None) is None

    def test_enable_then_new_ue_disturbed(self):
        mode = DisturbMode()
        mode.mark_primary(MAIN)
        mode.set_enabled(True)
        assert mode.check(THREAD, None) == "disturb"

    def test_disable_stops_disturbing(self):
        mode = DisturbMode()
        mode.mark_primary(MAIN)
        mode.set_enabled(True)
        mode.set_enabled(False)
        assert mode.check(UEId(100, 3), None) is None


class TestSelectivity:
    def test_new_thread_vs_new_process(self):
        mode = DisturbMode(enabled=True, stop_new_threads=False)
        mode.mark_primary(MAIN)
        assert mode.check(THREAD, None) is None  # same pid: a thread
        assert mode.check(CHILD, None) == "disturb"  # other pid: process

    def test_processes_only_off(self):
        mode = DisturbMode(enabled=True, stop_new_processes=False)
        mode.mark_primary(MAIN)
        assert mode.check(CHILD, None) is None
        assert mode.check(THREAD, None) == "disturb"

    def test_each_ue_disturbed_at_most_once(self):
        mode = DisturbMode(enabled=True)
        mode.mark_primary(MAIN)
        assert mode.check(THREAD, None) == "disturb"
        assert mode.check(THREAD, None) is None  # seen now


class TestBookkeeping:
    def test_disturbed_ues_recorded(self):
        mode = DisturbMode(enabled=True)
        mode.mark_primary(MAIN)
        mode.check(THREAD, None)
        mode.check(CHILD, None)
        assert mode.disturbed_ues() == [THREAD, CHILD]

    def test_fork_keeps_primary_so_children_are_disturbed(self):
        """§6.4: a freshly forked child IS a newly created process and
        must park; the child therefore keeps the parent's primary."""
        mode = DisturbMode(enabled=True)
        mode.mark_primary(MAIN)
        mode.reset_after_fork()  # runs in the (simulated) child
        assert mode.disturbed_ues() == []
        # the child's own surviving thread has a new pid => disturbed
        assert mode.check(CHILD, None) == "disturb"

"""Unit tests: client-side process tree (repro.core.metadata)."""

import json

from repro.core.metadata import ProcessTree


class TestObserve:
    def test_observe_and_len(self):
        tree = ProcessTree()
        tree.observe(pid=10, parent_pid=1)
        tree.observe(pid=20, parent_pid=10)
        assert len(tree) == 2

    def test_observe_refreshes(self):
        tree = ProcessTree()
        tree.observe(pid=10, parent_pid=1, program=None)
        tree.observe(pid=10, parent_pid=1, program="app")
        roots = tree.roots()
        assert roots[0].program == "app"

    def test_mark_exited(self):
        tree = ProcessTree()
        tree.observe(pid=10, parent_pid=1)
        tree.mark_exited(10)
        assert not tree.roots()[0].alive


class TestForest:
    def test_children_nest_under_parent(self):
        tree = ProcessTree()
        tree.observe(pid=10, parent_pid=1)
        tree.observe(pid=11, parent_pid=10)
        tree.observe(pid=12, parent_pid=10)
        tree.observe(pid=13, parent_pid=11)
        roots = tree.roots()
        assert [r.pid for r in roots] == [10]
        assert [c.pid for c in roots[0].children] == [11, 12]
        assert roots[0].children[0].children[0].pid == 13

    def test_unknown_parent_makes_root(self):
        tree = ProcessTree()
        tree.observe(pid=10, parent_pid=999)
        tree.observe(pid=20, parent_pid=888)
        assert [r.pid for r in tree.roots()] == [10, 20]

    def test_to_dict_is_json_safe(self):
        tree = ProcessTree()
        tree.observe(pid=10, parent_pid=1, program="p",
                     fork_generation=0)
        tree.observe(pid=11, parent_pid=10, fork_generation=1)
        payload = [r.to_dict() for r in tree.roots()]
        json.dumps(payload)
        assert payload[0]["children"][0]["fork_generation"] == 1


class TestRender:
    def test_render_indents_by_depth(self):
        tree = ProcessTree()
        tree.observe(pid=10, parent_pid=1, program="main")
        tree.observe(pid=11, parent_pid=10)
        tree.mark_exited(11)
        text = tree.render()
        lines = text.splitlines()
        assert lines[0] == "process 10 [main]"
        assert lines[1] == "  process 11 (exited)"

    def test_render_empty(self):
        assert ProcessTree().render() == ""

"""Unit tests: the §6.4 worker pools (repro.workerpool)."""

import pytest

from repro.workerpool import BuggyWorkerPool, FixedWorkerPool
from repro.workerpool.pool import WorkerPoolBase, make_channels
from repro.util.errors import PoolError

pytestmark = pytest.mark.forks


def double(x):
    return x * 2


def failing(x):
    if x == 3:
        raise RuntimeError("task 3 explodes")
    return x


class TestFixedPool:
    def test_map_returns_ordered_results(self):
        pool = FixedWorkerPool(3, join_timeout=5.0)
        results, outcomes = pool.map(double, list(range(9)))
        assert results == [x * 2 for x in range(9)]
        assert all(o.finished for o in outcomes)
        assert not any(o.hung for o in outcomes)

    def test_single_worker(self):
        pool = FixedWorkerPool(1, join_timeout=5.0)
        results, outcomes = pool.map(double, [1, 2, 3])
        assert results == [2, 4, 6]

    def test_more_workers_than_tasks(self):
        pool = FixedWorkerPool(4, join_timeout=5.0)
        results, outcomes = pool.map(double, [5])
        assert results == [10]
        assert all(o.finished for o in outcomes)

    def test_empty_tasks(self):
        pool = FixedWorkerPool(2, join_timeout=5.0)
        results, outcomes = pool.map(double, [])
        assert results == []
        assert all(o.finished for o in outcomes)

    def test_workers_really_are_processes(self):
        import os
        pool = FixedWorkerPool(2, join_timeout=5.0)
        results, outcomes = pool.map(lambda _x: os.getpid(), [1, 2])
        assert results[0] != os.getpid()
        assert {o.pid for o in outcomes} == set(results)

    def test_repeated_maps_are_independent(self):
        for _ in range(3):
            pool = FixedWorkerPool(2, join_timeout=5.0)
            results, _ = pool.map(double, [1, 2, 3, 4])
            assert results == [2, 4, 6, 8]


class TestBuggyPool:
    def test_deadlocks_with_race_window(self):
        """§6.4: sibling pipe copies keep workers from seeing EOF."""
        pool = BuggyWorkerPool(3, join_timeout=1.0, race_window=True)
        _results, outcomes = pool.map(double, list(range(6)))
        assert any(o.hung for o in outcomes), \
            "expected the §6.4 deadlock with a full race window"

    def test_single_worker_cannot_deadlock(self):
        """With one worker there are no siblings to leak pipes to."""
        pool = BuggyWorkerPool(1, join_timeout=3.0, race_window=True)
        results, outcomes = pool.map(double, [1, 2, 3])
        assert results == [2, 4, 6]
        assert not any(o.hung for o in outcomes)

    def test_hung_workers_are_reaped(self):
        """map() must not leak zombie children even when they hang."""
        import os
        pool = BuggyWorkerPool(3, join_timeout=0.5, race_window=True)
        _results, outcomes = pool.map(double, list(range(6)))
        for outcome in outcomes:
            if outcome.pid is None:
                continue
            # after map() returns, the child is reaped: kill(pid, 0) must
            # fail (no such process) or the pid belongs to someone new.
            try:
                os.kill(outcome.pid, 0)
                alive = True
            except OSError:
                alive = False
            assert not alive, f"worker {outcome.pid} leaked"


class TestBaseValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(PoolError):
            FixedWorkerPool(0)

    def test_base_spawn_is_abstract(self):
        base = WorkerPoolBase(1)
        with pytest.raises(NotImplementedError):
            base._spawn_all(double, [[1]])

    def test_make_channels_roles(self):
        ch = make_channels(0)
        assert ch.task_reader.readable and not ch.task_reader.writable
        assert ch.task_writer.writable
        assert ch.result_reader.readable
        assert ch.result_writer.writable
        for conn in (ch.task_reader, ch.task_writer,
                     ch.result_reader, ch.result_writer):
            conn.close()

"""Unit tests: length-prefixed JSON framing (repro.util.framing)."""

import socket
import struct

import pytest

from repro.util.errors import FramingError
from repro.util.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    decode_payload,
    encode_frame,
    recv_frame,
    send_frame,
)


class TestEncodeFrame:
    def test_roundtrip_simple_object(self):
        frame = encode_frame({"a": 1})
        decoder = FrameDecoder()
        decoder.feed(frame)
        assert list(decoder.messages()) == [{"a": 1}]

    def test_header_is_big_endian_length(self):
        frame = encode_frame([])
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_unicode_payload(self):
        message = {"text": "déjà vu — ユニコード"}
        decoder = FrameDecoder()
        decoder.feed(encode_frame(message))
        assert list(decoder.messages()) == [message]

    def test_empty_containers(self):
        for message in ({}, [], "", 0, None, False):
            decoder = FrameDecoder()
            decoder.feed(encode_frame(message))
            assert list(decoder.messages()) == [message]

    def test_unserializable_raises_framing_error(self):
        with pytest.raises(FramingError):
            encode_frame({"sock": object()})

    def test_oversized_frame_rejected(self):
        huge = "x" * (MAX_FRAME_BYTES + 10)
        with pytest.raises(FramingError):
            encode_frame(huge)


class TestFrameDecoder:
    def test_multiple_messages_one_feed(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(1) + encode_frame(2) + encode_frame(3))
        assert list(decoder.messages()) == [1, 2, 3]

    def test_split_inside_header(self):
        frame = encode_frame({"k": "v"})
        decoder = FrameDecoder()
        decoder.feed(frame[:2])
        assert list(decoder.messages()) == []
        decoder.feed(frame[2:])
        assert list(decoder.messages()) == [{"k": "v"}]

    def test_split_inside_payload(self):
        frame = encode_frame(list(range(100)))
        decoder = FrameDecoder()
        decoder.feed(frame[:10])
        assert list(decoder.messages()) == []
        decoder.feed(frame[10:])
        assert list(decoder.messages()) == [list(range(100))]

    def test_byte_at_a_time(self):
        frame = encode_frame({"x": [1, 2, 3]})
        decoder = FrameDecoder()
        received = []
        for i in range(len(frame)):
            decoder.feed(frame[i:i + 1])
            received.extend(decoder.messages())
        assert received == [{"x": [1, 2, 3]}]

    def test_pending_bytes_tracks_buffer(self):
        decoder = FrameDecoder()
        frame = encode_frame("hello")
        decoder.feed(frame[:6])
        assert decoder.pending_bytes == 6
        decoder.feed(frame[6:])
        list(decoder.messages())
        assert decoder.pending_bytes == 0

    def test_corrupt_length_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FramingError):
            list(decoder.messages())

    def test_bad_json_payload_rejected(self):
        payload = b"not json"
        decoder = FrameDecoder()
        decoder.feed(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(FramingError):
            list(decoder.messages())

    def test_decode_payload_bad_utf8(self):
        with pytest.raises(FramingError):
            decode_payload(b"\xff\xfe")


class TestBlockingHelpers:
    def test_send_recv_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"cmd": "step"})
            assert recv_frame(b) == {"cmd": "step"}
        finally:
            a.close()
            b.close()

    def test_recv_returns_none_on_clean_eof(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_recv_raises_on_eof_mid_frame(self):
        a, b = socket.socketpair()
        try:
            frame = encode_frame({"big": "x" * 100})
            a.sendall(frame[:10])
            a.close()
            with pytest.raises(FramingError):
                recv_frame(b)
        finally:
            b.close()

    def test_many_frames_in_sequence(self):
        a, b = socket.socketpair()
        try:
            for i in range(50):
                send_frame(a, {"seq": i})
            for i in range(50):
                assert recv_frame(b) == {"seq": i}
        finally:
            a.close()
            b.close()

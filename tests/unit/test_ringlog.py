"""Unit tests: the ring logger (repro.util.ringlog)."""

import threading

import pytest

from repro.util.ringlog import RingLog


class TestBasics:
    def test_emit_and_snapshot(self):
        log = RingLog(capacity=8)
        log.emit("cat", "first")
        log.emit("cat", "second")
        records = log.snapshot()
        assert [r.message for r in records] == ["first", "second"]
        assert records[0].seq == 0 and records[1].seq == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingLog(capacity=0)

    def test_format_contains_fields(self):
        log = RingLog()
        log.emit("tracing", "hello")
        text = log.snapshot()[0].format()
        assert "tracing" in text and "hello" in text

    def test_records_carry_wall_and_mono_clock_pair(self):
        """Cross-process trace merging needs both clocks per record:
        wall for the anchor, monotonic for every offset (NTP-robust)."""
        import time
        wall_before, mono_before = time.time(), time.monotonic()
        log = RingLog()
        log.emit("c", "stamped")
        wall_after, mono_after = time.time(), time.monotonic()
        record = log.snapshot()[0]
        assert wall_before <= record.timestamp <= wall_after
        assert mono_before <= record.mono <= mono_after

    def test_to_dict_is_json_ready(self):
        import json
        log = RingLog()
        log.emit("server", "wire me")
        d = log.snapshot()[0].to_dict()
        json.dumps(d)
        assert d["message"] == "wire me"
        assert d["category"] == "server"
        assert {"seq", "timestamp", "mono", "pid", "tid"} <= set(d)


class TestRingSemantics:
    def test_overwrites_oldest(self):
        log = RingLog(capacity=3)
        for i in range(5):
            log.emit("c", f"m{i}")
        assert [r.message for r in log.snapshot()] == ["m2", "m3", "m4"]

    def test_dropped_count(self):
        log = RingLog(capacity=2)
        for i in range(5):
            log.emit("c", str(i))
        assert log.dropped == 3

    def test_drain_clears(self):
        log = RingLog(capacity=4)
        log.emit("c", "x")
        drained = log.drain()
        assert [r.message for r in drained] == ["x"]
        assert log.snapshot() == []
        assert log.dropped == 0

    def test_reset_after_fork_clears(self):
        log = RingLog(capacity=4)
        log.emit("c", "parent record")
        log.reset_after_fork()
        assert log.snapshot() == []

    def test_reset_after_fork_survives_a_held_lock(self):
        # A parent thread mid-emit at the fork moment leaves the
        # inherited lock held forever in the single-threaded child; the
        # reset must replace the lock, never acquire it.
        log = RingLog(capacity=4)
        inherited = log._lock
        inherited.acquire()
        try:
            log.reset_after_fork()
        finally:
            inherited.release()
        assert log._lock is not inherited
        log.emit("c", "child record")
        assert [r.message for r in log.snapshot()] == ["child record"]


class TestConcurrency:
    def test_parallel_emitters_keep_all_records(self):
        log = RingLog(capacity=10000)

        def emit_many(tag):
            for i in range(500):
                log.emit(tag, f"{tag}-{i}")

        threads = [threading.Thread(target=emit_many, args=(f"t{k}",))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = log.snapshot()
        assert len(records) == 2000
        # sequence numbers are unique and dense
        seqs = [r.seq for r in records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 2000

"""Unit tests: UE identifiers and id allocators (repro.util.ids)."""

import os
import threading

from repro.util.ids import IdAllocator, UEId, describe_ue


class TestUEId:
    def test_current_uses_pid_and_tid(self):
        ue = UEId.current()
        assert ue.pid == os.getpid()
        assert ue.tid == threading.get_ident()

    def test_process_sentinel(self):
        ue = UEId.process()
        assert ue.pid == os.getpid()
        assert ue.is_process_main

    def test_equality_is_pairwise(self):
        assert UEId(1, 2) == UEId(1, 2)
        assert UEId(1, 2) != UEId(1, 3)
        assert UEId(1, 2) != UEId(2, 2)

    def test_ordering_and_hash(self):
        ues = [UEId(2, 1), UEId(1, 9), UEId(1, 2)]
        assert sorted(ues) == [UEId(1, 2), UEId(1, 9), UEId(2, 1)]
        assert len({UEId(1, 2), UEId(1, 2)}) == 1

    def test_different_threads_get_different_ids(self):
        ids = []

        def record():
            ids.append(UEId.current())

        thread = threading.Thread(target=record)
        thread.start()
        thread.join()
        assert ids[0] != UEId.current()
        assert ids[0].pid == os.getpid()


class TestIdAllocator:
    def test_monotonic_with_prefix(self):
        alloc = IdAllocator("s")
        assert [alloc.next() for _ in range(3)] == ["s1", "s2", "s3"]

    def test_reset_restarts(self):
        alloc = IdAllocator("v")
        alloc.next()
        alloc.reset()
        assert alloc.next() == "v1"

    def test_thread_safety_no_duplicates(self):
        alloc = IdAllocator("x")
        out = []
        lock = threading.Lock()

        def grab():
            for _ in range(200):
                value = alloc.next()
                with lock:
                    out.append(value)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(out) == len(set(out)) == 800


class TestDescribeUE:
    def test_process_level(self):
        assert describe_ue(UEId(10, 0)) == "process 10"

    def test_main_thread_label(self):
        assert describe_ue(UEId(10, 55), main_thread_ident=55) == \
            "process 10 / main thread"

    def test_worker_thread_label(self):
        assert describe_ue(UEId(10, 77), main_thread_ident=55) == \
            "process 10 / thread 77"

"""Unit tests: Connection and Pipe (repro.mp.pipes)."""

import os
import threading

import pytest

from repro.mp.pipes import Connection, Pipe, open_connections
from repro.util.errors import QueueClosed


class TestPipeBasics:
    def test_one_way_roles(self):
        reader, writer = Pipe()
        assert reader.readable and not reader.writable
        assert writer.writable and not writer.readable
        reader.close()
        writer.close()

    def test_send_recv(self):
        reader, writer = Pipe()
        try:
            writer.send([1, "two", {"three": 3}])
            assert reader.recv() == [1, "two", {"three": 3}]
        finally:
            reader.close()
            writer.close()

    def test_duplex_both_directions(self):
        a, b = Pipe(duplex=True)
        try:
            a.send("ping")
            assert b.recv() == "ping"
            b.send("pong")
            assert a.recv() == "pong"
        finally:
            a.close()
            b.close()

    def test_poll(self):
        reader, writer = Pipe()
        try:
            assert not reader.poll(0)
            writer.send(1)
            assert reader.poll(1.0)
        finally:
            reader.close()
            writer.close()

    def test_send_on_reader_rejected(self):
        reader, writer = Pipe()
        try:
            with pytest.raises(QueueClosed):
                reader.send(1)
            with pytest.raises(QueueClosed):
                writer.recv()
        finally:
            reader.close()
            writer.close()


class TestEOF:
    def test_writer_close_gives_reader_eof(self):
        reader, writer = Pipe()
        writer.send("last")
        writer.close()
        assert reader.recv() == "last"
        with pytest.raises(EOFError):
            reader.recv()
        reader.close()

    def test_partial_close_methods(self):
        """close_reader/close_writer drop one end only (§6.4 hygiene)."""
        reader, writer = Pipe(duplex=True)
        writer.close_reader()  # writer keeps only its write half
        writer.send("still works")
        assert reader.recv() == "still works"
        reader.close()
        writer.close()


class TestLifecycle:
    def test_close_idempotent(self):
        reader, writer = Pipe()
        reader.close()
        reader.close()
        writer.close()

    def test_closed_connection_rejects_io(self):
        reader, writer = Pipe()
        reader.close()
        writer.close()
        with pytest.raises(QueueClosed):
            writer.send(1)
        with pytest.raises(QueueClosed):
            reader.recv()
        with pytest.raises(QueueClosed):
            reader.poll(0)

    def test_fileno_of_closed_raises(self):
        reader, writer = Pipe()
        reader.close()
        with pytest.raises(QueueClosed):
            reader.fileno()
        writer.close()

    def test_context_manager_closes(self):
        reader, writer = Pipe()
        with reader, writer:
            writer.send(1)
            assert reader.recv() == 1
        assert reader.closed and writer.closed

    def test_open_connections_registry(self):
        before = len(open_connections())
        reader, writer = Pipe(label="tracked")
        assert len(open_connections()) == before + 2
        reader.close()
        writer.close()
        assert len(open_connections()) == before


class TestConcurrency:
    def test_concurrent_senders_do_not_interleave_frames(self):
        reader, writer = Pipe()
        n_threads, per_thread = 4, 50

        def send_many(tag):
            for i in range(per_thread):
                writer.send((tag, i, "x" * 1000))

        threads = [threading.Thread(target=send_many, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        received = [reader.recv() for _ in range(n_threads * per_thread)]
        for t in threads:
            t.join()
        # every frame intact, per-sender order preserved
        by_tag = {}
        for tag, i, payload in received:
            assert payload == "x" * 1000
            by_tag.setdefault(tag, []).append(i)
        for tag, seq in by_tag.items():
            assert seq == sorted(seq), f"sender {tag} reordered"
        reader.close()
        writer.close()


@pytest.mark.forks
class TestAcrossFork:
    def test_child_to_parent(self):
        reader, writer = Pipe()
        pid = os.fork()
        if pid == 0:
            reader.close()
            writer.send(("from-child", os.getpid()))
            writer.close()
            os._exit(0)
        writer.close()
        tag, child_pid = reader.recv()
        os.waitpid(pid, 0)
        assert tag == "from-child" and child_pid == pid
        reader.close()

    def test_parent_close_is_not_eof_while_child_holds_copy(self):
        """The §6.4 kernel fact: EOF needs ALL write ends closed."""
        reader, writer = Pipe()
        barrier_r, barrier_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            # child: hold the inherited write end until told to exit
            os.read(barrier_r, 1)
            os._exit(0)
        writer.close()  # parent's copy closed, child's copy still open
        assert not reader.poll(0.2), "EOF arrived despite child's copy"
        os.write(barrier_w, b"x")  # let the child exit
        os.waitpid(pid, 0)
        with pytest.raises(EOFError):
            reader.recv()  # NOW it is EOF
        reader.close()
        os.close(barrier_r)
        os.close(barrier_w)

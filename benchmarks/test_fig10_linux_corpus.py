"""Figure 10 / §7 "bigger sets" — word count over the Linux corpus.

Paper: *"Calculating words' frequency with Dionea in Linux source code
showed an increment of around 20%"* — normal 1601 s vs debugging 1933 s.
The linux profile is our scaled stand-in (see DESIGN.md): the largest of
the three corpora, where per-run fixed costs are fully amortised and the
overhead has settled at its asymptote.

Shape assertions: debugging is slower; overhead is a bounded constant
factor; and (checked in EXPERIMENTS.md across files) the asymptote is
*not smaller* than the small-corpus overhead once fixed costs amortise.
"""

import pytest

from .harness import attached_debugger, overhead_pair, wordcount_arm

PAPER = {"normal_s": 1601.0, "debugging_s": 1933.0, "overhead_pct": 20.7}


@pytest.mark.slow
@pytest.mark.benchmark(group="fig10-linux")
def test_fig10_wordcount_linux_corpus(benchmark):
    result = overhead_pair("linux", n_workers=4, repeats=2)

    from repro.corpus import generate_corpus, get_profile
    docs = generate_corpus(get_profile("linux"))
    run = wordcount_arm(docs, n_workers=4)
    with attached_debugger(program="fig10"):
        benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info.update({
        "paper_normal_s": PAPER["normal_s"],
        "paper_debugging_s": PAPER["debugging_s"],
        "paper_overhead_pct": PAPER["overhead_pct"],
        "measured_normal_s": round(result.normal.best, 4),
        "measured_debugging_s": round(result.debugging.best, 4),
        "measured_overhead_pct": round(result.overhead_percent, 1),
    })
    print("\n=== Figure 10: Linux corpus (large) ===")
    print(result.render(paper_label=f"+{PAPER['overhead_pct']}% "
                                    f"({PAPER['normal_s']:.0f}s -> "
                                    f"{PAPER['debugging_s']:.0f}s)"))

    assert result.debugging.best > result.normal.best
    assert result.overhead_percent < 100.0

"""Testbed description — our side of the paper's Table 1.

Table 1 documents the authors' machine (Core i5 / 4 cores, 6 GB DDR3,
Ubuntu 13.04, CPython 2.5.2).  The reproduction reports the same fields
for the machine the benchmarks actually ran on, so EXPERIMENTS.md can
show both side by side.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict

#: The paper's Table 1, verbatim.
PAPER_TABLE1 = {
    "CPU": "Intel(R) Core(TM) i5 CPU, 4 cores",
    "HD": "OCZ Technology Vertex 2 SATA II (SSD)",
    "Memory": "6GB DDR3 1333MHz",
    "OS": "Ubuntu 13.04 (3.8.0-27 SMP x86_64 GNU/Linux)",
    "Python": "2.5.2",
}


def _cpu_model() -> str:
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def _memory_total() -> str:
    try:
        with open("/proc/meminfo", encoding="utf-8") as fh:
            for line in fh:
                if line.startswith("MemTotal"):
                    kib = int(line.split()[1])
                    return f"{kib / (1024 * 1024):.1f} GiB"
    except (OSError, ValueError, IndexError):
        pass
    return "unknown"


def local_table1() -> Dict[str, str]:
    """Our testbed, in the paper's Table 1 shape."""
    return {
        "CPU": f"{_cpu_model()}, {os.cpu_count()} cores",
        "HD": "container filesystem",
        "Memory": _memory_total(),
        "OS": f"{platform.system()} {platform.release()} "
              f"({platform.machine()})",
        "Python": sys.version.split()[0],
    }


def render_comparison() -> str:
    ours = local_table1()
    lines = [f"{'field':8s}  {'paper (Table 1)':55s}  this run",
             "-" * 110]
    for key in PAPER_TABLE1:
        lines.append(f"{key:8s}  {PAPER_TABLE1[key]:55s}  {ours[key]}")
    return "\n".join(lines)

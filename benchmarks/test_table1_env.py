"""Table 1 — computer specifications.

The paper's Table 1 documents its testbed; this "benchmark" records ours
next to it (the numbers in EXPERIMENTS.md come from this output) and
times the probe itself so it participates in ``--benchmark-only`` runs.
"""

from .envinfo import PAPER_TABLE1, local_table1, render_comparison


def test_table1_environment(benchmark):
    ours = benchmark(local_table1)
    print("\n=== Table 1: computer specifications ===")
    print(render_comparison())
    # sanity: every paper field has a local counterpart
    assert set(ours) == set(PAPER_TABLE1)
    assert all(ours.values())

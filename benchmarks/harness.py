"""Shared measurement utilities for the §7 overhead experiments.

The paper's methodology: run the same MapReduce word-count program twice
— once plain, once with Dionea attached and **no breakpoints set** — and
report the wall-clock increase.  ``overhead_pair`` is that experiment as
a function: same corpus bytes, same worker count, same code path; the
only difference between arms is the attached debugger (trace hook +
listener thread + augmented fork + connected client).

Numbers here are not expected to match the paper's absolute seconds (the
testbed differs and the corpora are scaled stand-ins — see DESIGN.md);
the *shape* is the claim under test: overhead is a modest constant
factor, smaller on small corpora (fixed costs amortise less) and
settling as corpora grow.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.client import DebugClient
from repro.core import Dionea
from repro.corpus import corpus_stats, generate_corpus, get_profile
from repro.mapreduce import run_wordcount


@dataclass
class ArmResult:
    """Timings for one arm (normal or debugging) of an experiment."""

    times: List[float]

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times)


@dataclass
class OverheadResult:
    """One §7-style experiment outcome."""

    profile: str
    n_workers: int
    normal: ArmResult
    debugging: ArmResult
    corpus: Dict[str, int]

    @property
    def overhead_percent(self) -> float:
        """Increase of the debugging arm over the normal arm (best-of)."""
        return 100.0 * (self.debugging.best - self.normal.best) \
            / self.normal.best

    def render(self, paper_label: str = "") -> str:
        lines = [
            f"profile={self.profile} workers={self.n_workers} "
            f"corpus={self.corpus['files']} files / "
            f"{self.corpus['bytes']} bytes",
            f"  normal:    best {self.normal.best:8.3f}s  "
            f"mean {self.normal.mean:8.3f}s",
            f"  debugging: best {self.debugging.best:8.3f}s  "
            f"mean {self.debugging.mean:8.3f}s",
            f"  overhead:  {self.overhead_percent:+6.1f}%"
            + (f"   (paper: {paper_label})" if paper_label else ""),
        ]
        return "\n".join(lines)


def time_call(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure_arm(fn: Callable[[], object], repeats: int) -> ArmResult:
    return ArmResult(times=[time_call(fn) for _ in range(repeats)])


def wordcount_arm(documents, n_workers: int,
                  chunksize: int = 4) -> Callable[[], dict]:
    def run():
        return run_wordcount(documents, n_workers=n_workers,
                             chunksize=chunksize, timeout=600)
    return run


class attached_debugger:
    """Context manager: a started Dionea with a connected client —
    the paper's "program run with Dionea and no breakpoints"."""

    def __init__(self, program: str = "bench",
                 park_timeout: float = 30.0):
        self.program = program
        self.park_timeout = park_timeout
        self.dionea: Optional[Dionea] = None
        self.client: Optional[DebugClient] = None

    def __enter__(self) -> Dionea:
        portfile = tempfile.mktemp(prefix=f"dionea-bench-{self.program}-")
        self.dionea = Dionea(program=self.program,
                             portfile_path=portfile,
                             park_timeout=self.park_timeout)
        self.dionea.start()
        self.client = DebugClient()
        self.client.watch_portfile(self.dionea.portfile)
        # wait for the client to hold the parent session, as a real
        # debug session would
        deadline = time.monotonic() + 5
        while not self.client.sessions() and time.monotonic() < deadline:
            time.sleep(0.01)
        return self.dionea

    def __exit__(self, *exc_info) -> None:
        if self.client is not None:
            self.client.close()
        if self.dionea is not None:
            self.dionea.stop()


def overhead_pair(profile_name: str, n_workers: int = 4,
                  repeats: int = 3, chunksize: int = 4) -> OverheadResult:
    """Run both arms of the §7 experiment for one corpus profile."""
    profile = get_profile(profile_name)
    documents = generate_corpus(profile)
    run = wordcount_arm(documents, n_workers, chunksize)

    # Interleave nothing: finish the normal arm before attaching, so the
    # debugging arm cannot contaminate it.
    normal = measure_arm(run, repeats)
    with attached_debugger(program=f"wordcount-{profile_name}"):
        debugging = measure_arm(run, repeats)

    return OverheadResult(profile=profile_name, n_workers=n_workers,
                          normal=normal, debugging=debugging,
                          corpus=corpus_stats(profile))

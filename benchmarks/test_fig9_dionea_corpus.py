"""Figure 9 / §7 "small data set" — word count over the Dionea corpus.

Paper: *"Calculating words' frequency with Dionea in Dionea source code
showed an increment of around 12%"* — normal 2.31 s vs debugging 2.58 s
on their testbed; the abstracted claim is that running the MapReduce
word count under an attached, breakpoint-free Dionea costs a modest
constant factor, the smallest of the three corpora.

Here: the same pair over the scaled ``dionea`` corpus profile.  The
benchmark fixture measures the debugging arm; the normal arm is timed
manually inside the same test so the printed comparison uses one corpus
generation and one process.

Shape assertions (absolute numbers differ by testbed — see
EXPERIMENTS.md): the debugging arm is slower, and the overhead stays a
small constant factor (well under the ~2x a naive always-line-tracing
debugger would cost).
"""

import pytest

from .harness import attached_debugger, overhead_pair

PAPER = {"normal_s": 2.31, "debugging_s": 2.58, "overhead_pct": 11.7}


@pytest.mark.benchmark(group="fig9-dionea")
def test_fig9_wordcount_dionea_corpus(benchmark):
    result = overhead_pair("dionea", n_workers=4, repeats=2)

    # One more debugging-arm run under pytest-benchmark's timer, so the
    # saved benchmark JSON carries a machine-readable figure.
    from repro.corpus import generate_corpus, get_profile
    from .harness import wordcount_arm
    docs = generate_corpus(get_profile("dionea"))
    run = wordcount_arm(docs, n_workers=4)
    with attached_debugger(program="fig9"):
        benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info.update({
        "paper_normal_s": PAPER["normal_s"],
        "paper_debugging_s": PAPER["debugging_s"],
        "paper_overhead_pct": PAPER["overhead_pct"],
        "measured_normal_s": round(result.normal.best, 4),
        "measured_debugging_s": round(result.debugging.best, 4),
        "measured_overhead_pct": round(result.overhead_percent, 1),
    })
    print("\n=== Figure 9: Dionea corpus (small) ===")
    print(result.render(paper_label=f"+{PAPER['overhead_pct']}% "
                                    f"({PAPER['normal_s']}s -> "
                                    f"{PAPER['debugging_s']}s)"))

    assert result.debugging.best > result.normal.best, \
        "debugging arm should cost something"
    assert result.overhead_percent < 100.0, \
        "no-breakpoint overhead should stay a modest constant factor"

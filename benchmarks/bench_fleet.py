"""Fleet-scale client benchmark: one reactor, ~200 debuggee processes.

A gunicorn-style fork tree — one bench master forking N workers, each
worker running a real :class:`~repro.server.DebugServer` and announcing
itself in a rendezvous file — attached by ONE :class:`DebugClient`
multiplexing every session on its single reactor.  Three gated arms,
one JSON artifact (``BENCH_fleet.json``):

1. **Thread bill** (hard gate): after all N sessions attach, the client
   owns a constant number of threads (reactor loop + event dispatcher),
   independent of N.  The pre-reactor design cost ~3 threads per
   session (~600 at N=200); the gate pins the O(1) property.
2. **Sweep speedup** (gate: ≥ 5×): a fleet-wide ``status`` sweep via
   pipelined scatter-gather (:meth:`DebugClient.cluster_request`) vs the
   serial-loop baseline (one blocking request per session).  Serial
   costs the *sum* of per-process round trips; scatter-gather overlaps
   them across N independent server processes.
3. **Idle CPU** (gate: budget fraction of one core): with N sessions
   attached and heartbeats running, the client process's CPU over a
   quiet window.  An idle-attached fleet client must not spin.

Attach latency for the full fleet is recorded (not gated) alongside.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py --out BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))
sys.path.insert(0, os.path.dirname(HERE))

from repro.client import DebugClient  # noqa: E402
from repro.util.portfile import (  # noqa: E402
    PortFile,
    PortRecord,
    default_portfile_path,
)


def spawn_fleet(portfile: PortFile, n_workers: int,
                dispatch_delay: float = 0.0):
    """Fork *n_workers* children, each a live debug server.

    Every child starts a :class:`DebugServer` (tracing off: this
    benchmark measures the client, not sys.settrace), announces its
    port, then blocks on a shared shutdown pipe — zero CPU while idle,
    which keeps the idle-CPU arm honest.  Returns ``(pids, stop)``
    where calling ``stop()`` releases and reaps the whole fleet.

    *dispatch_delay* arms a testkit delay at ``server.request.dispatch``
    in every worker: a stand-in for real per-command handler cost
    (telemetry collection, stack capture).  On loopback with empty
    handlers both sweep arms are client-bound and the serial-vs-batch
    contrast the sweep gate is about never shows; with a handler cost,
    the serial loop pays the *sum* of them and scatter-gather pays the
    *max* — the quantity the gate pins.  Heartbeat pongs use a separate
    injection point and stay instant.
    """
    read_fd, write_fd = os.pipe()
    parent = os.getpid()
    pids = []
    for index in range(n_workers):
        pid = os.fork()
        if pid == 0:
            code = 70
            try:
                os.close(write_fd)
                from repro.server import DebugServer
                from repro.testkit.faults import Fault, registry
                if dispatch_delay > 0:
                    registry().reset()
                    registry().arm("server.request.dispatch",
                                   Fault.delay(dispatch_delay))
                server = DebugServer(program=f"fleet-worker-{index}",
                                     park_timeout=120.0)
                server.start(install_tracing=False, announce=False)
                portfile.announce(PortRecord(
                    pid=os.getpid(), parent_pid=parent, host="127.0.0.1",
                    port=server.port, created_at=time.time()))
                os.read(read_fd, 1)  # EOF when the master closes write_fd
                server.close()
                code = 0
            except BaseException:  # noqa: BLE001 - child must die quietly
                pass
            finally:
                os._exit(code)
        pids.append(pid)
    os.close(read_fd)

    def stop():
        os.close(write_fd)
        deadline = time.monotonic() + 30.0
        remaining = set(pids)
        while remaining and time.monotonic() < deadline:
            for pid in list(remaining):
                done, _status = os.waitpid(pid, os.WNOHANG)
                if done == pid:
                    remaining.discard(pid)
            if remaining:
                time.sleep(0.01)
        for pid in remaining:  # pragma: no cover - stuck child
            try:
                os.kill(pid, 9)
                os.waitpid(pid, 0)
            except OSError:
                pass

    return pids, stop


def dionea_thread_names():
    return sorted(t.name for t in threading.enumerate()
                  if t.name.startswith("dionea-"))


def wait_attached(client: DebugClient, want: int, timeout: float) -> float:
    started = time.monotonic()
    deadline = started + timeout
    while time.monotonic() < deadline:
        if len(client.sessions()) >= want:
            return time.monotonic() - started
        time.sleep(0.02)
    raise RuntimeError(f"only {len(client.sessions())}/{want} sessions "
                       f"attached within {timeout:.0f}s")


def sweep_arms(client: DebugClient, repeats: int) -> dict:
    """Serial-loop vs pipelined scatter-gather, best of *repeats*."""
    sessions = client.sessions()
    serial_times, batch_times = [], []
    for _ in range(repeats):
        started = time.monotonic()
        for session in sessions:
            session.request("status", timeout=30.0)
        serial_times.append(time.monotonic() - started)

        started = time.monotonic()
        results, errors = client.cluster_request("status", timeout=30.0)
        batch_times.append(time.monotonic() - started)
        if errors or len(results) != len(sessions):
            raise RuntimeError(f"sweep holes over a healthy fleet: "
                               f"{len(results)}/{len(sessions)} ok, "
                               f"errors={errors}")
    return {
        "sessions": len(sessions),
        "repeats": repeats,
        "serial": {"times": serial_times, "best": min(serial_times)},
        "pipelined": {"times": batch_times, "best": min(batch_times)},
        "speedup": min(serial_times) / min(batch_times),
    }


def idle_cpu_arm(window: float) -> dict:
    """Client-process CPU fraction over a quiet *window* seconds.

    ``time.process_time`` sums every thread in this process — exactly
    the bill an idle-attached client presents.  Heartbeats keep firing
    during the window; that traffic is part of the idle cost, not noise.
    """
    cpu0 = time.process_time()
    wall0 = time.monotonic()
    time.sleep(window)
    wall = time.monotonic() - wall0
    cpu = time.process_time() - cpu0
    return {"window_seconds": wall, "cpu_seconds": cpu,
            "cpu_fraction": cpu / wall}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(HERE), "BENCH_fleet.json"))
    parser.add_argument("--sessions", type=int, default=200,
                        help="fleet size (forked debug-server workers)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="sweep repetitions; best-of wins")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0)
    parser.add_argument("--dispatch-delay-ms", type=float, default=5.0,
                        help="per-command handler cost modelled in each "
                             "worker (see spawn_fleet)")
    parser.add_argument("--idle-window", type=float, default=2.0)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="pipelined sweep must beat serial by this")
    parser.add_argument("--idle-cpu-budget", type=float, default=0.25,
                        help="max client CPU fraction while idle-attached")
    parser.add_argument("--max-client-threads", type=int, default=2,
                        help="reactor loop + dispatcher; never O(N)")
    args = parser.parse_args(argv)

    portfile = PortFile(default_portfile_path(f"bench-fleet-{os.getpid()}"))
    print(f"bench-fleet: forking {args.sessions} debug-server workers ...",
          flush=True)
    _pids, stop_fleet = spawn_fleet(
        portfile, args.sessions,
        dispatch_delay=args.dispatch_delay_ms / 1000.0)

    client = DebugClient()
    gates_ok = True
    try:
        started = time.monotonic()
        client.watch_portfile(portfile, poll_interval=0.05)
        attach_seconds = wait_attached(client, args.sessions, timeout=120.0)
        # Tighten the ping cadence so the idle window (and the final
        # fleet_health) sees real heartbeat traffic, not silence.
        for session in client.sessions():
            session.heartbeat_interval = args.heartbeat_interval
        print(f"  attach: {args.sessions} sessions in "
              f"{attach_seconds:6.2f}s "
              f"({attach_seconds / args.sessions * 1000:.1f} ms/session)")

        threads = dionea_thread_names()
        threads_ok = len(threads) <= args.max_client_threads
        print(f"  client threads: {len(threads)} {threads} "
              f"(gate: <= {args.max_client_threads})"
              + ("" if threads_ok else "  FAIL"))

        print(f"bench-fleet: sweep arms (best of {args.repeats}) ...",
              flush=True)
        sweep = sweep_arms(client, args.repeats)
        speedup_ok = sweep["speedup"] >= args.min_speedup
        print(f"  serial loop: best {sweep['serial']['best']:8.3f}s")
        print(f"  pipelined:   best {sweep['pipelined']['best']:8.3f}s")
        print(f"  speedup: {sweep['speedup']:6.2f}x "
              f"(gate: >= {args.min_speedup:.1f}x)"
              + ("" if speedup_ok else "  FAIL"))

        print(f"bench-fleet: idle-attached CPU over "
              f"{args.idle_window:.1f}s ...", flush=True)
        idle = idle_cpu_arm(args.idle_window)
        idle_ok = idle["cpu_fraction"] <= args.idle_cpu_budget
        print(f"  cpu: {idle['cpu_seconds']:6.3f}s over "
              f"{idle['window_seconds']:.2f}s -> "
              f"{idle['cpu_fraction'] * 100:5.1f}% of one core "
              f"(gate: <= {args.idle_cpu_budget * 100:.0f}%)"
              + ("" if idle_ok else "  FAIL"))

        fleet = client.fleet_health()
        total_seconds = time.monotonic() - started
    finally:
        client.close()
        stop_fleet()
        portfile.remove()

    gates = {
        "client_threads_constant": threads_ok,
        "sweep_speedup": speedup_ok,
        "idle_cpu": idle_ok,
    }
    gates_ok = all(gates.values())
    document = {
        "benchmark": "fleet-client",
        "sessions": args.sessions,
        "attach": {"seconds": attach_seconds,
                   "per_session_ms":
                       attach_seconds / args.sessions * 1000.0},
        "client_threads": {"names": threads, "count": len(threads),
                           "max_allowed": args.max_client_threads},
        "sweep": {**sweep,
                  "dispatch_delay_ms": args.dispatch_delay_ms,
                  "min_speedup": args.min_speedup},
        "idle": {**idle, "budget_fraction": args.idle_cpu_budget},
        "fleet_health": fleet,
        "total_seconds": total_seconds,
        "gates": gates,
        "all_gates_pass": gates_ok,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"bench-fleet: wrote {args.out}")

    if not gates_ok:
        failed = [name for name, ok in gates.items() if not ok]
        print(f"bench-fleet: FAIL — gates breached: {failed}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

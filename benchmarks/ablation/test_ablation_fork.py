"""Ablation: fork-path costs — handlers, sweep size, full Dionea follow.

The §5.4 machinery runs on every spawn; these benches price it:

* plain ``os.fork`` + ``waitpid`` (container baseline — itself ~10 ms
  because of the Python heap's COW page tables);
* fork through a :class:`ForkPatcher` with N no-op handler sets;
* the pre-fork ownership sweep as a function of registered sync objects;
* the full Dionea fork-follow (sweep + child server re-init + announce).
"""

import os
import tempfile
import threading

import pytest

from repro.forkhooks.augment import ForkPatcher
from repro.forkhooks.registry import ForkHandlerRegistry
from repro.forkhooks.syncobjects import SyncObjectRegistry, manage_lock


def fork_and_reap():
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)


@pytest.mark.benchmark(group="ablation-fork")
def test_fork_plain(benchmark):
    benchmark.pedantic(fork_and_reap, rounds=10, iterations=1)


@pytest.mark.benchmark(group="ablation-fork")
@pytest.mark.parametrize("n_handlers", [1, 10, 50])
def test_fork_with_handlers(benchmark, n_handlers):
    registry = ForkHandlerRegistry()
    for i in range(n_handlers):
        registry.register(f"h{i}", prepare=lambda: None,
                          parent=lambda: None, child=lambda: None)
    with ForkPatcher(registry):
        benchmark.pedantic(fork_and_reap, rounds=10, iterations=1)
    benchmark.extra_info["n_handlers"] = n_handlers


@pytest.mark.benchmark(group="ablation-sweep")
@pytest.mark.parametrize("n_objects", [0, 10, 100, 1000])
def test_ownership_sweep_cost(benchmark, n_objects):
    """§5.3 problem 1: acquiring every registered sync object pre-fork."""
    registry = SyncObjectRegistry()
    locks = [threading.Lock() for _ in range(n_objects)]
    for i, lock in enumerate(locks):
        manage_lock(registry, lock, name=f"lock{i}")

    def sweep():
        registry.take_ownership()
        registry.release_ownership()

    benchmark(sweep)
    benchmark.extra_info["n_objects"] = n_objects


@pytest.mark.benchmark(group="ablation-fork")
def test_fork_full_dionea_follow(benchmark):
    """The whole §5.4 pipeline: sweep, disable, fork, child server
    re-init + port-file announce (in the child), parent resume."""
    from repro.core import Dionea

    dionea = Dionea(program="ablation-fork",
                    portfile_path=tempfile.mktemp(prefix="dionea-abl-"),
                    park_timeout=5.0)
    dionea.start()
    try:
        benchmark.pedantic(fork_and_reap, rounds=10, iterations=1)
    finally:
        dionea.stop()

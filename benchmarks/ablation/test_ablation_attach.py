"""Ablation: attach and fork-follow latency (the user-facing delays).

How long until a debuggee is actually debuggable?  Three numbers:

* TCP attach: client dial → hello_ack → first command answered;
* fork-follow: ``os.fork`` under Dionea → child announced → client
  auto-attached and answering commands (Figs. 5–6 end to end);
* disturb-mode tax: per-event dispatch cost while disturb is enabled
  (every event takes the non-quiet path even when nothing parks).
"""

import os
import tempfile
import time

import pytest

from repro.client import DebugClient
from repro.core import Dionea
from repro.server import DebugServer


@pytest.mark.benchmark(group="ablation-attach")
def test_tcp_attach_latency(benchmark):
    server = DebugServer(program="attach-bench", park_timeout=5.0)
    server.start()
    try:
        def attach_and_command():
            client = DebugClient()
            session = client.attach("127.0.0.1", server.port)
            info = session.request("info")
            client.close()
            return info["pid"]

        assert benchmark.pedantic(attach_and_command, rounds=10,
                                  iterations=1) == os.getpid()
    finally:
        server.close()


@pytest.mark.benchmark(group="ablation-attach")
def test_fork_follow_latency(benchmark):
    """fork → announce → watcher dial → child session usable."""
    dionea = Dionea(program="follow-bench",
                    portfile_path=tempfile.mktemp(prefix="dionea-abl-"),
                    park_timeout=5.0)
    dionea.start()
    client = DebugClient()
    client.watch_portfile(dionea.portfile, poll_interval=0.005)
    deadline = time.monotonic() + 5
    while not client.sessions() and time.monotonic() < deadline:
        time.sleep(0.01)
    children = []
    try:
        def fork_and_reach_child():
            pid = os.fork()
            if pid == 0:
                time.sleep(2.0)  # stay alive long enough to be reached
                os._exit(0)
            children.append(pid)
            session = client.session_for_pid(pid, timeout=5)
            return session.request("info")["fork_generation"]

        assert benchmark.pedantic(fork_and_reach_child, rounds=5,
                                  iterations=1) == 1
    finally:
        for pid in children:
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
        client.close()
        dionea.stop()


@pytest.mark.benchmark(group="ablation-attach")
@pytest.mark.parametrize("disturb_on", [False, True],
                         ids=["disturb-off", "disturb-on"])
def test_disturb_mode_dispatch_tax(benchmark, disturb_on):
    """Per-event cost of the non-quiet path disturb forces, measured on
    a call-dense workload where every UE is already exempt."""
    from repro.core.disturb import DisturbMode
    from repro.tracing.engine import TraceEngine

    def leaf(x):
        return x + 1

    def call_dense():
        total = 0
        for i in range(3000):
            total = leaf(total)
        return total

    disturb = DisturbMode()
    engine = TraceEngine(disturb=disturb, park_timeout=1.0)
    engine.install()
    try:
        if disturb_on:
            disturb.set_enabled(True)  # snapshots this thread as exempt
            engine.refresh_quiet()
        assert benchmark(call_dense) == 3000
    finally:
        engine.uninstall()

"""Ablation: wire-protocol costs — framing, rendering, end-to-end RTT.

The debug channel is on the stop/resume critical path (a client-driven
step is one request + one response + one event); these benches price
its layers separately so protocol overhead can be attributed.
"""

import pytest

from repro.server import protocol
from repro.util.framing import FrameDecoder, encode_frame
from repro.util.serde import render_namespace, render_value


@pytest.mark.benchmark(group="ablation-protocol")
def test_encode_small_request(benchmark):
    message = protocol.make_request(7, "resume", {
        "ue": {"pid": 1234, "tid": 567890}, "action": "step"})
    frame = benchmark(encode_frame, message)
    assert len(frame) > 4


@pytest.mark.benchmark(group="ablation-protocol")
def test_decode_small_request(benchmark):
    frame = encode_frame(protocol.make_request(7, "resume", {
        "ue": {"pid": 1234, "tid": 567890}, "action": "step"}))

    def decode():
        decoder = FrameDecoder()
        decoder.feed(frame)
        return next(decoder.messages())

    assert benchmark(decode)["command"] == "resume"


@pytest.mark.benchmark(group="ablation-protocol")
def test_encode_stopped_event_with_capture(benchmark):
    """The realistic heavyweight message: a stop with 8 stack frames."""
    capture = {
        "frames": [{"file": f"/app/module_{i}.py", "line": 10 + i,
                    "function": f"func_{i}", "source": "x = compute(y)",
                    "locals": {f"var{j}": str(j) for j in range(10)}}
                   for i in range(8)],
        "reason": "breakpoint", "breakpoint_id": 3, "watch": None,
    }
    event = protocol.make_event("stopped", {
        "ue": {"pid": 1, "tid": 2}, "capture": capture,
        "session_token": "ab" * 16})
    frame = benchmark(encode_frame, event)
    assert len(frame) > 1000


@pytest.mark.benchmark(group="ablation-protocol")
def test_render_namespace_cost(benchmark):
    """The Variables view rendering that runs at every stop."""
    namespace = {
        "counter": 42, "name": "worker-3", "items": list(range(50)),
        "table": {f"k{i}": [i, i * 2] for i in range(20)},
        "blob": "x" * 5000, "flag": True, "ratio": 0.5,
    }
    rendered = benchmark(render_namespace, namespace)
    assert "counter" in rendered


@pytest.mark.benchmark(group="ablation-protocol")
def test_stop_resume_round_trip(benchmark):
    """End to end: breakpoint park -> event -> client resume, over real
    sockets.  This is the latency a stepping user feels per step."""
    import os
    import threading
    from repro.client import DebugClient
    from repro.server import DebugServer

    src = os.path.abspath(__file__)

    def tick():
        beat = 0
        beat += 1       # BP line
        return beat

    bp_line = tick.__code__.co_firstlineno + 2

    server = DebugServer(program="rtt", park_timeout=15.0)
    server.start()
    client = DebugClient(on_stop=lambda view: view.cont())
    session = client.attach("127.0.0.1", server.port)
    session.request("set_break", {"file": src, "line": bp_line})
    try:
        def one_cycle():
            box = {}
            thread = threading.Thread(
                target=lambda: box.setdefault("r", tick()))
            thread.start()
            thread.join(15.0)
            return box["r"]

        assert benchmark.pedantic(one_cycle, rounds=20,
                                  iterations=1) == 1
    finally:
        client.close()
        server.close()

"""Ablation: software-TM throughput vs contention (§9 extension).

Prices the TM substrate so the "debug TM programs" extension has a
baseline: commit cost when uncontended, throughput collapse under a
hot-spot, and the cost of running transactions under the quiet trace
hook (transactional code is ordinary Python to the debugger).
"""

import threading

import pytest

from repro.stm import MONITOR, TVar, atomically


@pytest.fixture(autouse=True)
def reset_monitor():
    MONITOR.reset()
    yield
    MONITOR.reset()


@pytest.mark.benchmark(group="ablation-stm")
def test_uncontended_commit(benchmark):
    var = TVar(0)

    def bump():
        atomically(lambda tx: tx.write(var, tx.read(var) + 1))

    benchmark(bump)


@pytest.mark.benchmark(group="ablation-stm")
def test_read_only_transaction(benchmark):
    tvars = [TVar(i) for i in range(8)]

    def read_all():
        return atomically(lambda tx: sum(tx.read(v) for v in tvars))

    assert benchmark(read_all) == sum(range(8))


@pytest.mark.benchmark(group="ablation-stm")
@pytest.mark.parametrize("n_threads", [1, 4])
def test_hotspot_throughput(benchmark, n_threads):
    """Total wall time for a fixed number of increments split across
    threads that all write one TVar — contention manufactures aborts."""
    per_run = 2000

    def run():
        var = TVar(0)
        per_thread = per_run // n_threads

        def bump_loop():
            for _ in range(per_thread):
                atomically(lambda tx: tx.write(var, tx.read(var) + 1))

        threads = [threading.Thread(target=bump_loop)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return var.peek()

    assert benchmark.pedantic(run, rounds=3,
                              iterations=1) == per_run
    benchmark.extra_info["n_threads"] = n_threads


@pytest.mark.benchmark(group="ablation-stm")
@pytest.mark.parametrize("traced", [False, True],
                         ids=["untraced", "traced"])
def test_commit_under_tracing(benchmark, traced):
    from repro.tracing.engine import TraceEngine

    var = TVar(0)
    engine = None
    if traced:
        engine = TraceEngine(park_timeout=1.0)
        engine.install()

    def bump():
        atomically(lambda tx: tx.write(var, tx.read(var) + 1))

    try:
        benchmark(bump)
    finally:
        if engine is not None:
            engine.uninstall()

"""Ablation: queue payload size vs throughput (§6.3's semaphore + pipe).

The §6.3 queue moves pickled payloads through a pipe gated by a
semaphore; these benches price a put/get round trip as payload grows —
the cost that scales §7's overhead with corpus size — and compare the
inter-thread :class:`ThreadQueue` for context.
"""

import pytest

from repro.mp.queues import Queue, ThreadQueue


@pytest.mark.benchmark(group="ablation-queue")
@pytest.mark.parametrize("payload_bytes", [64, 4096, 32768])
def test_queue_roundtrip_by_payload(benchmark, payload_bytes):
    """Single-threaded put-then-get: the frame must fit in the kernel
    pipe buffer (64 KiB on Linux), so payloads stop at 32 KiB here;
    larger frames need a concurrent reader (next test)."""
    queue = Queue()
    payload = "x" * payload_bytes

    def roundtrip():
        queue.put(payload)
        return queue.get()

    result = benchmark(roundtrip)
    assert len(result) == payload_bytes
    benchmark.extra_info["payload_bytes"] = payload_bytes
    queue.close()


@pytest.mark.benchmark(group="ablation-queue")
def test_queue_streaming_large_payload(benchmark):
    """1 MiB frames: larger than the pipe, so a consumer thread drains
    while the producer writes — the §6.3 flow-control path."""
    import threading

    queue = Queue()
    payload = "y" * 1048576

    def roundtrip():
        out = {}
        reader = threading.Thread(
            target=lambda: out.setdefault("v", queue.get(timeout=30)))
        reader.start()
        queue.put(payload)
        reader.join(30)
        return out["v"]

    assert len(benchmark.pedantic(roundtrip, rounds=5,
                                  iterations=1)) == 1048576
    queue.close()


@pytest.mark.benchmark(group="ablation-queue")
def test_queue_roundtrip_structured_payload(benchmark):
    """Dict payloads (the word-count partials) cost pickle, not just IO."""
    queue = Queue()
    payload = {f"word{i}": i for i in range(1000)}

    def roundtrip():
        queue.put(payload)
        return queue.get()

    result = benchmark(roundtrip)
    assert len(result) == 1000
    queue.close()


@pytest.mark.benchmark(group="ablation-queue")
def test_thread_queue_roundtrip(benchmark):
    """The inter-thread queue (no pickling, no pipe) as the floor."""
    queue = ThreadQueue()

    def roundtrip():
        queue.put("token")
        return queue.get()

    assert benchmark(roundtrip) == "token"


@pytest.mark.benchmark(group="ablation-queue")
@pytest.mark.parametrize("traced", [False, True],
                         ids=["untraced", "traced"])
def test_queue_roundtrip_under_tracing(benchmark, traced):
    """How much of the §7 overhead lives in the queue machinery: the
    same round trip with the quiet trace hook installed."""
    from repro.tracing.engine import TraceEngine

    queue = Queue()
    payload = "x" * 20000
    engine = None
    if traced:
        engine = TraceEngine(park_timeout=1.0)
        engine.install()

    def roundtrip():
        queue.put(payload)
        return queue.get()

    try:
        assert len(benchmark(roundtrip)) == 20000
    finally:
        if engine is not None:
            engine.uninstall()
        queue.close()

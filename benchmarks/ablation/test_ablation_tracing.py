"""Ablation: what each layer of the debugger costs (DESIGN.md §5).

Decomposes the §7 overhead into its mechanisms on a fixed in-process
workload:

* **baseline**      — no debugger at all;
* **trace-installed** — ``sys.settrace`` hook with the quiet fast path
  (the interpreter now runs in tracing mode: this is the floor any
  settrace-based debugger pays on CPython ≥3.11);
* **line-traced**   — a breakpoint in an unrelated file forces the same
  workload through the non-quiet dispatch path;
* **listener-only** — debug server running but tracing not installed
  (the Reactor thread and sockets are nearly free).
"""

import os

import pytest

from repro.server import DebugServer
from repro.tracing.engine import TraceEngine


def workload():
    """Pure-Python busy work: the worst case for tracing mode."""
    total = 0
    for i in range(40_000):
        total += (i ^ (i >> 3)) % 7
    return total


EXPECTED = workload()


@pytest.mark.benchmark(group="ablation-tracing")
def test_baseline_no_debugger(benchmark):
    assert benchmark(workload) == EXPECTED


@pytest.mark.benchmark(group="ablation-tracing")
def test_trace_installed_quiet(benchmark):
    engine = TraceEngine(park_timeout=1.0)
    engine.install()
    try:
        assert benchmark(workload) == EXPECTED
    finally:
        engine.uninstall()


@pytest.mark.benchmark(group="ablation-tracing")
def test_trace_installed_nonquiet(benchmark):
    """A breakpoint in another file disables the quiet flag: every call
    event takes the slow dispatch, though no line tracing happens here."""
    engine = TraceEngine(park_timeout=1.0)
    engine.breakpoints.add("/nonexistent/other.py", 10)
    engine.install()
    try:
        assert benchmark(workload) == EXPECTED
    finally:
        engine.uninstall()


@pytest.mark.benchmark(group="ablation-tracing")
def test_listener_only_server(benchmark):
    server = DebugServer(program="ablation", park_timeout=1.0)
    server.start(install_tracing=False, announce=False)
    try:
        assert benchmark(workload) == EXPECTED
    finally:
        server.close()

"""Telemetry overhead benchmark: is the observability layer free enough?

Two experiments, one JSON artifact (``BENCH_obs.json``):

1. **The §7 overhead pair** (normal vs attached-debugger) on the
   word-count workload — the repo's standing intrusion measurement,
   re-run here so the telemetry numbers sit next to the baseline they
   must not disturb.
2. **Metrics-on vs metrics-off**, both arms under the attached debugger:
   the same workload with :func:`repro.obs.metrics.set_enabled` toggled.
   The difference is the *entire* cost of the metrics/span hot paths
   (shard dict increments, histogram observes, span ring appends) —
   the acceptance bound is metrics-on ≤ 3% over metrics-off.
3. **Black-box-on vs black-box-off**, both arms under the attached
   debugger: the same workload with ``DIONEA_BLACKBOX_DIR`` pointed at
   a scratch directory vs disabled.  The difference is the full cost of
   the crash flight-recorder (dump rotation per fork, ring-hook drains,
   ``O_APPEND`` writes) — held to the same ≤ 3% budget.

Best-of-N timing on both comparisons: the minimum is the run least
perturbed by the OS, which is the quantity a fixed-cost bound is about.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py --out BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))
sys.path.insert(0, os.path.dirname(HERE))

from benchmarks.harness import (  # noqa: E402
    attached_debugger,
    measure_arm,
    overhead_pair,
    wordcount_arm,
)
from repro.corpus import corpus_stats, generate_corpus, get_profile  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402


def metrics_toggle_pair(profile_name: str, n_workers: int,
                        repeats: int, chunksize: int = 4) -> dict:
    """Run the debugger-attached workload with metrics on, then off."""
    profile = get_profile(profile_name)
    documents = generate_corpus(profile)
    run = wordcount_arm(documents, n_workers, chunksize)

    with attached_debugger(program=f"obs-bench-{profile_name}"):
        # Warm once so first-run costs (import, allocator, pyc) are not
        # attributed to whichever arm happens to go first.
        run()
        obs_metrics.set_enabled(True)
        try:
            arm_on = measure_arm(run, repeats)
        finally:
            obs_metrics.set_enabled(False)
        try:
            arm_off = measure_arm(run, repeats)
        finally:
            obs_metrics.set_enabled(True)

    overhead = 100.0 * (arm_on.best - arm_off.best) / arm_off.best
    return {
        "profile": profile_name,
        "workers": n_workers,
        "repeats": repeats,
        "corpus": corpus_stats(profile),
        "metrics_on": {"times": arm_on.times, "best": arm_on.best,
                       "mean": arm_on.mean},
        "metrics_off": {"times": arm_off.times, "best": arm_off.best,
                        "mean": arm_off.mean},
        "metrics_overhead_percent": overhead,
    }


def blackbox_toggle_pair(profile_name: str, n_workers: int,
                         repeats: int, chunksize: int = 4) -> dict:
    """Run the debugger-attached workload with the black box on vs off.

    Each arm gets its own attached-debugger bracket: the black box is
    configured at ``Dionea.start`` from the environment, so the toggle
    must happen before the debugger comes up.  The on-arm writes into a
    scratch directory that is deleted afterwards.
    """
    import shutil
    import tempfile

    from repro.obs.blackbox import BLACKBOX_DIR_ENV

    profile = get_profile(profile_name)
    documents = generate_corpus(profile)
    run = wordcount_arm(documents, n_workers, chunksize)

    def measure_with_env(directory) -> "object":
        saved = os.environ.get(BLACKBOX_DIR_ENV)
        if directory is None:
            os.environ.pop(BLACKBOX_DIR_ENV, None)
        else:
            os.environ[BLACKBOX_DIR_ENV] = directory
        try:
            with attached_debugger(program=f"obs-bench-{profile_name}"):
                run()  # warm
                return measure_arm(run, repeats)
        finally:
            if saved is None:
                os.environ.pop(BLACKBOX_DIR_ENV, None)
            else:
                os.environ[BLACKBOX_DIR_ENV] = saved

    scratch = tempfile.mkdtemp(prefix="dionea-bench-bb-")
    try:
        arm_on = measure_with_env(scratch)
        dumps = len([n for n in os.listdir(scratch)
                     if n.startswith("bb-")])
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    arm_off = measure_with_env(None)

    overhead = 100.0 * (arm_on.best - arm_off.best) / arm_off.best
    return {
        "profile": profile_name,
        "workers": n_workers,
        "repeats": repeats,
        "dump_files_written": dumps,
        "blackbox_on": {"times": arm_on.times, "best": arm_on.best,
                        "mean": arm_on.mean},
        "blackbox_off": {"times": arm_off.times, "best": arm_off.best,
                         "mean": arm_off.mean},
        "blackbox_overhead_percent": overhead,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(HERE), "BENCH_obs.json"))
    parser.add_argument("--profile", default="dionea",
                        help="corpus profile for both experiments")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--budget-percent", type=float, default=3.0,
                        help="fail if metrics-on exceeds metrics-off by "
                             "more than this")
    args = parser.parse_args(argv)

    print(f"bench-obs: §7 overhead pair ({args.profile}, "
          f"{args.workers} workers, best of {args.repeats}) ...",
          flush=True)
    pair = overhead_pair(args.profile, n_workers=args.workers,
                         repeats=args.repeats)
    print(pair.render())

    print("bench-obs: metrics-on vs metrics-off (debugger attached) ...",
          flush=True)
    toggle = metrics_toggle_pair(args.profile, args.workers, args.repeats)
    print(f"  metrics on:  best {toggle['metrics_on']['best']:8.3f}s  "
          f"mean {toggle['metrics_on']['mean']:8.3f}s")
    print(f"  metrics off: best {toggle['metrics_off']['best']:8.3f}s  "
          f"mean {toggle['metrics_off']['mean']:8.3f}s")
    print(f"  metrics overhead: "
          f"{toggle['metrics_overhead_percent']:+6.2f}% "
          f"(budget {args.budget_percent:.1f}%)")

    print("bench-obs: blackbox-on vs blackbox-off (debugger attached) ...",
          flush=True)
    bb = blackbox_toggle_pair(args.profile, args.workers, args.repeats)
    print(f"  blackbox on:  best {bb['blackbox_on']['best']:8.3f}s  "
          f"mean {bb['blackbox_on']['mean']:8.3f}s  "
          f"({bb['dump_files_written']} dump files)")
    print(f"  blackbox off: best {bb['blackbox_off']['best']:8.3f}s  "
          f"mean {bb['blackbox_off']['mean']:8.3f}s")
    print(f"  blackbox overhead: "
          f"{bb['blackbox_overhead_percent']:+6.2f}% "
          f"(budget {args.budget_percent:.1f}%)")

    document = {
        "benchmark": "obs-overhead",
        "section7_pair": {
            "profile": pair.profile,
            "workers": pair.n_workers,
            "corpus": pair.corpus,
            "normal": {"times": pair.normal.times,
                       "best": pair.normal.best,
                       "mean": pair.normal.mean},
            "debugging": {"times": pair.debugging.times,
                          "best": pair.debugging.best,
                          "mean": pair.debugging.mean},
            "overhead_percent": pair.overhead_percent,
        },
        "metrics_toggle": toggle,
        "blackbox_toggle": bb,
        "budget_percent": args.budget_percent,
        "within_budget":
            toggle["metrics_overhead_percent"] <= args.budget_percent
            and bb["blackbox_overhead_percent"] <= args.budget_percent,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"bench-obs: wrote {args.out}")

    if not document["within_budget"]:
        print(f"bench-obs: FAIL — metrics hot path costs "
              f"{toggle['metrics_overhead_percent']:.2f}%, black box "
              f"{bb['blackbox_overhead_percent']:.2f}% "
              f"(budget {args.budget_percent:.1f}%)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

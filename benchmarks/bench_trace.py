"""Trace-dispatch overhead benchmark: what does an idle debugger cost?

Three experiments, one JSON artifact (``BENCH_trace.json``):

1. **The §7 overhead pair** (normal vs attached-debugger) on the
   word-count workload — the paper's headline number, re-measured under
   the per-code fast path and the armed/disarmed hook lifecycle.  The
   acceptance bound is ≤ 25% (the pre-fastpath engine sat at ~46%).
2. **The no-breakpoint attach arm**: a single-process, main-thread
   compute loop timed normal vs attached.  This isolates the engine's
   quiet cost on the thread that used to pay the most (on CPython 3.11+
   a mere per-thread trace hook disables the specializing interpreter);
   with the settrace backend's main-thread demotion the hook is
   physically gone while quiet.  The acceptance bound is ≤ 15%
   (Makefile-gated).
3. **Armed-with-irrelevant-breakpoint** (informational): the same
   compute loop with one breakpoint set in a file that never executes.
   The engine is armed — the hook is back, the specializer is off — but
   every call resolves through the LineTable probe
   (``trace.fastpath_hits``).  This is the honest price of *being about
   to debug* on 3.11; the PEP 669 backend exists to erase it on 3.12+.

Best-of-N timing on all comparisons: the minimum is the run least
perturbed by the OS, which is the quantity a fixed-cost bound is about.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace.py --out BENCH_trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))
sys.path.insert(0, os.path.dirname(HERE))

from benchmarks.harness import (  # noqa: E402
    attached_debugger,
    measure_arm,
    overhead_pair,
)
from repro.corpus import generate_corpus, get_profile  # noqa: E402


def _count_words(documents) -> dict:
    """Pure-Python word count in the calling thread — the §7 workload's
    bottleneck shape, minus the fork/IPC machinery, so the measured
    delta is the trace engine's and nothing else's."""
    counts: dict = {}
    for _name, text in documents:
        for word in text.split():
            counts[word] = counts.get(word, 0) + 1
    return counts


def _arm_dict(arm) -> dict:
    return {"times": arm.times, "best": arm.best, "mean": arm.mean}


def attach_arm(profile_name: str, repeats: int) -> dict:
    """Experiment 2: normal vs attached, no breakpoints, main thread."""
    documents = generate_corpus(get_profile(profile_name))

    def run():
        return _count_words(documents)

    run()  # warm (allocator, string interning) outside both arms
    normal = measure_arm(run, repeats)
    with attached_debugger(program=f"trace-bench-{profile_name}") as dbg:
        engine = dbg.server.engine
        run()  # let the quiet main thread demote before timing
        debugging = measure_arm(run, repeats)
        state = {
            "backend": engine.backend_name,
            "fastpath": engine.fastpath,
            "main_demoted": engine._main_demoted,  # noqa: SLF001
            "event_count": engine.event_count,
        }
    overhead = 100.0 * (debugging.best - normal.best) / normal.best
    return {
        "profile": profile_name,
        "repeats": repeats,
        "normal": _arm_dict(normal),
        "debugging": _arm_dict(debugging),
        "overhead_percent": overhead,
        "engine": state,
    }


def armed_irrelevant_arm(profile_name: str, repeats: int) -> dict:
    """Experiment 3: one breakpoint that can never hit (informational)."""
    documents = generate_corpus(get_profile(profile_name))

    def run():
        return _count_words(documents)

    run()
    normal = measure_arm(run, repeats)
    with attached_debugger(program=f"trace-armed-{profile_name}") as dbg:
        engine = dbg.server.engine
        bp = engine.breakpoints.add("/dionea/never/executed.py", 1)
        run()
        hits_before = engine.fastpath_hits
        debugging = measure_arm(run, repeats)
        counters = {
            "fastpath_hits": engine.fastpath_hits,
            "fastpath_hits_during_arm": engine.fastpath_hits - hits_before,
            "local_installs": engine.local_installs,
            "linetable_generation": engine.linetable.generation,
        }
        engine.breakpoints.remove(bp.id)
    overhead = 100.0 * (debugging.best - normal.best) / normal.best
    return {
        "profile": profile_name,
        "repeats": repeats,
        "normal": _arm_dict(normal),
        "debugging": _arm_dict(debugging),
        "overhead_percent": overhead,
        "counters": counters,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(HERE), "BENCH_trace.json"))
    parser.add_argument("--profile", default="dionea",
                        help="corpus profile for all experiments")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--pair-budget-percent", type=float, default=25.0,
                        help="fail if the §7 pair's debugging overhead "
                             "exceeds this")
    parser.add_argument("--attach-budget-percent", type=float, default=15.0,
                        help="fail if the no-breakpoint attach arm "
                             "exceeds this")
    args = parser.parse_args(argv)

    print(f"bench-trace: §7 overhead pair ({args.profile}, "
          f"{args.workers} workers, best of {args.repeats}) ...",
          flush=True)
    pair = overhead_pair(args.profile, n_workers=args.workers,
                         repeats=args.repeats)
    print(pair.render(paper_label="10-20% band"))

    print("bench-trace: no-breakpoint attach arm (main thread) ...",
          flush=True)
    attach = attach_arm(args.profile, args.repeats)
    print(f"  normal:    best {attach['normal']['best']:8.3f}s")
    print(f"  attached:  best {attach['debugging']['best']:8.3f}s")
    print(f"  overhead:  {attach['overhead_percent']:+6.2f}% "
          f"(budget {args.attach_budget_percent:.1f}%; "
          f"backend={attach['engine']['backend']}, "
          f"demoted={attach['engine']['main_demoted']})")

    print("bench-trace: armed-with-irrelevant-breakpoint arm ...",
          flush=True)
    armed = armed_irrelevant_arm(args.profile, args.repeats)
    print(f"  overhead:  {armed['overhead_percent']:+6.2f}% "
          f"(informational; fastpath hits during arm: "
          f"{armed['counters']['fastpath_hits_during_arm']})")

    pair_ok = pair.overhead_percent <= args.pair_budget_percent
    attach_ok = attach["overhead_percent"] <= args.attach_budget_percent
    document = {
        "benchmark": "trace-dispatch",
        "backend": attach["engine"]["backend"],
        "fastpath": attach["engine"]["fastpath"],
        "section7_pair": {
            "profile": pair.profile,
            "workers": pair.n_workers,
            "corpus": pair.corpus,
            "normal": _arm_dict(pair.normal),
            "debugging": _arm_dict(pair.debugging),
            "overhead_percent": pair.overhead_percent,
            "budget_percent": args.pair_budget_percent,
        },
        "attach_arm": dict(attach,
                           budget_percent=args.attach_budget_percent),
        "armed_irrelevant": armed,
        "gates": {
            "section7_pair_ok": pair_ok,
            "attach_arm_ok": attach_ok,
        },
        "within_budget": pair_ok and attach_ok,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"bench-trace: wrote {args.out}")

    if not pair_ok:
        print(f"bench-trace: FAIL — §7 debugging overhead "
              f"{pair.overhead_percent:.2f}% "
              f"(> {args.pair_budget_percent:.1f}% budget)",
              file=sys.stderr)
    if not attach_ok:
        print(f"bench-trace: FAIL — no-breakpoint attach arm costs "
              f"{attach['overhead_percent']:.2f}% "
              f"(> {args.attach_budget_percent:.1f}% budget)",
              file=sys.stderr)
    return 0 if document["within_budget"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""§7 — the full overhead sweep: small vs medium vs large corpora.

Paper: *"An increment of 12.11% in the execution time was found for a
small set of data when executing the program with Dionea, while bigger
sets of data showed an increment of around 20%"*, plus the Rust run
(3'49" → 4'36", ≈ +20.5%).

The sweep reruns the identical experiment across all three corpus
profiles and checks the cross-size *shape*: overhead everywhere is a
bounded constant factor, and the small corpus does not show the largest
overhead once per-run fixed costs (pool spawn) are excluded by scale —
i.e. overhead does not collapse toward zero as corpora grow (the traced
per-byte work keeps paying), matching the paper's 12% → ~20% settling
pattern rather than a fixed-cost-only model.
"""

import pytest

from .harness import overhead_pair

PAPER_ROWS = {
    "dionea": "+12.1% (small data set / Fig. 9)",
    "rust": "+20.5% (Rust master 7613b15, 3'49\" -> 4'36\")",
    "linux": "+20.7% (bigger sets / Fig. 10)",
}

_RESULTS = {}


def _measure(profile, repeats=2):
    if profile not in _RESULTS:
        _RESULTS[profile] = overhead_pair(profile, n_workers=4,
                                          repeats=repeats)
    return _RESULTS[profile]


@pytest.mark.benchmark(group="section7")
def test_section7_small(benchmark):
    result = _measure("dionea")
    benchmark.pedantic(lambda: None, rounds=1)  # timings carried below
    benchmark.extra_info["measured_overhead_pct"] = \
        round(result.overhead_percent, 1)
    print("\n=== §7 small (dionea profile) ===")
    print(result.render(paper_label=PAPER_ROWS["dionea"]))
    assert result.debugging.best > result.normal.best


@pytest.mark.benchmark(group="section7")
def test_section7_rust(benchmark):
    result = _measure("rust")
    benchmark.pedantic(lambda: None, rounds=1)
    benchmark.extra_info["measured_overhead_pct"] = \
        round(result.overhead_percent, 1)
    print("\n=== §7 rust profile ===")
    print(result.render(paper_label=PAPER_ROWS["rust"]))
    assert result.debugging.best > result.normal.best
    assert result.overhead_percent < 100.0


@pytest.mark.slow
@pytest.mark.benchmark(group="section7")
def test_section7_large_and_shape(benchmark):
    """The cross-size claim: overhead settles rather than vanishing."""
    small = _measure("dionea")
    medium = _measure("rust")
    large = _measure("linux")
    benchmark.pedantic(lambda: None, rounds=1)
    benchmark.extra_info.update({
        "small_pct": round(small.overhead_percent, 1),
        "medium_pct": round(medium.overhead_percent, 1),
        "large_pct": round(large.overhead_percent, 1),
    })
    print("\n=== §7 sweep ===")
    for label, result in (("small", small), ("medium", medium),
                          ("large", large)):
        print(f"[{label}]")
        print(result.render(paper_label=PAPER_ROWS[
            {"small": "dionea", "medium": "rust",
             "large": "linux"}[label]]))

    # Shape: every arm pays; the overhead does not collapse to ~zero at
    # scale (the per-byte traced work keeps costing, as in the paper).
    for result in (small, medium, large):
        assert result.debugging.best > result.normal.best
    assert large.overhead_percent > 5.0, \
        "overhead should persist at scale (per-byte traced work)"

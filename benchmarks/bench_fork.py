"""Fork-bracket overhead benchmark: what does the augmented fork cost?

The do-no-harm invariant has a performance clause: the debuggee's
ability to fork must survive the debugger not just functionally but
economically.  The gated quantity is the **prepare fast path** — the
parent-side work the augmented fork adds around ``fork(2)`` when
nothing is wrong: phase A (sync-object sweep, trace disable, the
quarantine check), phase B (re-enable, release), the bracket span and
the clean-fork bookkeeping.  The budget: that addition may cost at
most as much as a bare ``fork(2)`` itself, i.e. the augmented fork's
parent-side latency stays ≤ ``--max-ratio`` (default 2×) bare.

The bracket is timed on its own, without a fork between phases A and
B: on a small (possibly single-CPU) runner, any window that spans a
real fork also captures the child's post-fork interpreter fix-up and
copy-on-write storms — real costs, but the child's and the kernel's,
not the prepare fast path's.  The artifact still records the observed
end-to-end cycle (fork → child exits → reap) for both arms,
ungated, for context: the debugged child rebuilds a full debug
server before it can run, and that rebuild is priced there.

Acceptance gate: (bare + bracket) ≤ ``--max-ratio`` × bare, medians.
Artifact written to ``BENCH_fork.json``; nonzero exit on a breach.

Usage::

    PYTHONPATH=src python benchmarks/bench_fork.py --out BENCH_fork.json
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))
sys.path.insert(0, os.path.dirname(HERE))

from benchmarks.envinfo import local_table1  # noqa: E402
from repro.core import Dionea  # noqa: E402
from repro.obs.spans import SPANS  # noqa: E402


def time_fork_cycles(n: int, warmup: int = 10) -> list:
    """Per-cycle wall times (seconds) for *n* fork → child ``_exit`` →
    reap cycles with whatever ``os.fork`` currently is."""
    samples = []
    for i in range(warmup + n):
        start = time.perf_counter()
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        if i >= warmup:
            samples.append(time.perf_counter() - start)
    return samples


def time_bare_fork_returns(n: int, warmup: int = 10) -> list:
    """Parent-side latency of the bare fork call alone (return from
    ``os.fork`` in the parent); the reap happens outside the window."""
    samples = []
    for i in range(warmup + n):
        start = time.perf_counter()
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        elapsed = time.perf_counter() - start
        os.waitpid(pid, 0)
        if i >= warmup:
            samples.append(elapsed)
    return samples


def time_bracket(dionea: Dionea, n: int, warmup: int = 10) -> list:
    """Per-call cost of the parent-side bracket additions on the
    prepare fast path: phases A and B, the bracket span, and the
    clean-fork bookkeeping — everything the augmented fork runs in the
    parent besides ``fork(2)`` itself."""
    registry = dionea.fork_registry
    samples = []
    for i in range(warmup + n):
        start = time.perf_counter()
        bracket = SPANS.begin("fork.bracket", cat="fork")
        registry.run_prepare()
        registry.run_parent()
        bracket.end()
        registry.note_clean_fork()
        if i >= warmup:
            samples.append(time.perf_counter() - start)
    return samples


def summarize(samples: list) -> dict:
    ordered = sorted(samples)
    return {
        "n": len(samples),
        "median_us": statistics.median(ordered) * 1e6,
        "p90_us": ordered[int(len(ordered) * 0.9)] * 1e6,
        "min_us": ordered[0] * 1e6,
        "max_us": ordered[-1] * 1e6,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_fork.json")
    parser.add_argument("--forks", type=int, default=150,
                        help="timed samples per measurement")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="gate: (bare + bracket) / bare bound")
    args = parser.parse_args(argv)

    bare_returns = summarize(time_bare_fork_returns(args.forks))
    bare_cycle = summarize(time_fork_cycles(args.forks))

    portfile = tempfile.mktemp(prefix="dionea-bench-fork-")
    dionea = Dionea(program="bench-fork", portfile_path=portfile,
                    park_timeout=10.0)
    dionea.start()
    try:
        bracket = summarize(time_bracket(dionea, args.forks))
        augmented_cycle = summarize(time_fork_cycles(args.forks))
    finally:
        dionea.stop()

    bare_us = bare_returns["median_us"]
    bracket_us = bracket["median_us"]
    ratio = (bare_us + bracket_us) / bare_us
    gate_pass = ratio <= args.max_ratio

    artifact = {
        "env": local_table1(),
        "samples_per_arm": args.forks,
        "bare_fork_return": bare_returns,
        "prepare_fastpath_bracket": bracket,
        "ratio_fastpath": round(ratio, 3),
        "gate": {"max_ratio": args.max_ratio, "pass": gate_pass},
        # context, ungated: end-to-end cycles including the child's
        # exit (bare) / full debug-server rebuild (augmented)
        "cycle_bare": bare_cycle,
        "cycle_augmented": augmented_cycle,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"bare fork return:      median {bare_us:8.1f} µs")
    print(f"prepare-fast-path add: median {bracket_us:8.1f} µs")
    print(f"augmented/bare ratio:  {ratio:.2f}x  "
          f"(gate: <= {args.max_ratio:.1f}x — "
          f"{'pass' if gate_pass else 'FAIL'})")
    print(f"cycle incl. child:     bare "
          f"{bare_cycle['median_us']:8.1f} µs, debugged "
          f"{augmented_cycle['median_us']:8.1f} µs (context, ungated)")
    print(f"wrote {args.out}")
    return 0 if gate_pass else 1


if __name__ == "__main__":
    sys.exit(main())

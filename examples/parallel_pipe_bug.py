#!/usr/bin/env python
"""§6.4 — reproducing the parallel-gem pipe bug, then the fix.

The paper's field report: under Dionea, the Ruby *parallel* gem 0.5.9
"very often" deadlocked — forks issued by the interacting threads copied
every sibling's pipes into every child, so closing a worker's task pipe
in the parent never produced EOF in that worker.  The fix (0.5.10/11):
fork sequentially from the main thread and close the copied-but-unused
sibling pipes in each child.

This example runs the SAME workload through both fork disciplines and
prints who finished and who hung — then demonstrates the paper's
debugging methodology: with disturb mode on, every freshly forked worker
parks at birth, and the client replays the interleaving on purpose.

Run:  python examples/parallel_pipe_bug.py
"""

import os
import sys
import tempfile
import threading
import time

from repro.client import DebugClient
from repro.core import Dionea
from repro.workerpool import BuggyWorkerPool, FixedWorkerPool

N_WORKERS = 4
TASKS = list(range(12))


def crunch(x):
    return x * x + 1


def show(kind, results, outcomes):
    hung = [o.index for o in outcomes if o.hung]
    finished = [o.index for o in outcomes if o.finished]
    print(f"  {kind:6s}: finished workers {finished}, "
          f"hung workers {hung}")
    complete = all(r is not None for r in results)
    print(f"          all {len(TASKS)} results delivered: "
          f"{'YES' if complete else 'NO'}")
    return bool(hung)


def main():
    print(f"=== the §6.4 bug: {N_WORKERS} workers, "
          f"{len(TASKS)} tasks ===")

    print("\n[1] parallel 0.5.10/11 discipline "
          "(sequential forks, sibling pipes closed):")
    fixed = FixedWorkerPool(N_WORKERS, join_timeout=5.0)
    results, outcomes = fixed.map(crunch, TASKS)
    fixed_hung = show("fixed", results, outcomes)

    print("\n[2] parallel 0.5.9 discipline "
          "(concurrent forks from interacting threads):")
    buggy = BuggyWorkerPool(N_WORKERS, join_timeout=2.0, race_window=True)
    results, outcomes = buggy.map(crunch, TASKS)
    buggy_hung = show("buggy", results, outcomes)

    print(f"\nbug reproduced: "
          f"{'YES' if buggy_hung and not fixed_hung else 'NO'} "
          f"(buggy hangs, fixed does not)")

    # --- the paper's §6.4 methodology: disturb mode -------------------
    print("\n[3] disturb mode: every new worker parks at birth; the "
          "client scripts the interleaving")
    portfile = tempfile.mktemp(prefix="dionea-pipebug-")
    with Dionea(program="pipe-bug", portfile_path=portfile,
                park_timeout=60.0) as debugger:
        # stop every newly forked *process* (not this script's own
        # helper threads), as in the paper's §6.4 workflow
        debugger.disturb_mode.stop_new_threads = False
        debugger.disturb_mode.set_enabled(True)
        client = DebugClient()
        client.watch_portfile(debugger.portfile)
        time.sleep(0.2)

        box = {}

        def run_pool():
            pool = FixedWorkerPool(N_WORKERS, join_timeout=30.0)
            box["out"] = pool.map(crunch, TASKS)

        runner = threading.Thread(target=run_pool)
        runner.start()

        parked = []
        deadline = time.monotonic() + 30
        while len(parked) < N_WORKERS and time.monotonic() < deadline:
            for view in client.stopped_views():
                if view.ue.pid != os.getpid() and view not in parked:
                    parked.append(view)
                    print(f"    worker {view.ue.pid} disturbed at birth "
                          f"({view.capture.reason})")
            time.sleep(0.02)

        print(f"    releasing the {len(parked)} workers in REVERSE "
              f"birth order (a chosen schedule)")
        for view in reversed(parked):
            view.cont()

        runner.join(60)
        results, outcomes = box["out"]
        ok = results == [crunch(x) for x in TASKS]
        print(f"    scripted run completed correctly: "
              f"{'YES' if ok else 'NO'}")
        client.close()

    return 0 if (buggy_hung and not fixed_hung and ok) else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""§9 (future work) — debugging transactional-memory code.

The paper closes by suggesting Dionea support for programs that use
(hardware) transactional memory instead of an interpreter lock.  This
example exercises the reproduction's software-TM substrate under the
debugger:

1. several threads hammer a shared set of STM bank accounts; the
   invariant (total balance) is checked transactionally throughout;
2. a deliberately hot transaction produces an **abort storm**, which the
   transaction monitor reports as a debugger event — at a transaction
   *boundary*, the only safe stopping point (stopping inside an attempt
   would just abort it, the classic TM-debugging trap);
3. the per-UE transaction profile (commits / aborts / hottest conflict)
   is printed — the "transaction view" a TM-aware client would render.

Run:  python examples/stm_bank.py
"""

import sys
import tempfile
import threading

from repro.core import Dionea
from repro.stm import MONITOR, TVar, atomically

N_ACCOUNTS = 6
N_THREADS = 6
TRANSFERS = 400
INITIAL = 1000


def main():
    MONITOR.reset()
    MONITOR.storm_threshold = 8

    portfile = tempfile.mktemp(prefix="dionea-stm-")
    with Dionea(program="stm-bank", portfile_path=portfile,
                park_timeout=10.0):
        accounts = [TVar(INITIAL, name=f"acct-{i}")
                    for i in range(N_ACCOUNTS)]

        def total(tx):
            return sum(tx.read(a) for a in accounts)

        def worker(seed):
            import random
            rng = random.Random(seed)
            for _ in range(TRANSFERS):
                # Hot-spot pattern: everyone touches account 0, which is
                # what manufactures conflicts and aborts.
                src, dst = 0, rng.randrange(1, N_ACCOUNTS)
                if rng.random() < 0.5:
                    src, dst = dst, src

                def body(tx):
                    amount = rng.randint(1, 5)
                    balance = tx.read(accounts[src])
                    if balance >= amount:
                        tx.write(accounts[src], balance - amount)
                        tx.write(accounts[dst],
                                 tx.read(accounts[dst]) + amount)

                atomically(body)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        final_total = atomically(total)
        report = MONITOR.report()
        commits = sum(p["commits"] for p in report["profiles"].values())
        aborts = sum(p["aborts"] for p in report["profiles"].values())

        print(f"accounts after {N_THREADS * TRANSFERS} transfers:")
        for account in accounts:
            print(f"  {account.name}: {account.peek()}")
        print(f"total: {final_total} "
              f"(invariant {'HELD' if final_total == N_ACCOUNTS * INITIAL else 'VIOLATED'})")
        print(f"transactions: {commits} commits, {aborts} aborts "
              f"({100 * aborts / max(1, commits + aborts):.1f}% abort rate)")
        hottest = {}
        for profile in report["profiles"].values():
            for name, count in profile["conflicts"].items():
                hottest[name] = hottest.get(name, 0) + count
        if hottest:
            name, count = max(hottest.items(), key=lambda kv: kv[1])
            print(f"hottest conflict: {name} ({count} aborts) — "
                  f"the debugger's transaction view points straight at "
                  f"the contended variable")
        if report["storms"]:
            print(f"abort storms reported to the debugger: "
                  f"{len(report['storms'])} "
                  f"(parked safely at transaction boundaries)")
        return 0 if final_total == N_ACCOUNTS * INITIAL else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""§6.3 — debugging a multi-process MapReduce word count (Fig. 8).

The paper's showcase: a word-count job over forked workers sharing
input/output queues, debugged live.  A breakpoint on entry to the map
function stops each worker the first time it maps a document; the client walks
the stopped workers (the Processes-and-threads view of Fig. 2), inspects
one, and releases them all — after which *"an available child process
takes over the jobs"* and the job completes with correct counts.

Run:  python examples/mapreduce_wordcount.py [n_workers]
"""

import os
import sys
import tempfile
import threading
import time

from repro.client import DebugClient
from repro.core import Dionea
from repro.corpus import generate_corpus, get_profile
from repro.mapreduce import (
    map_wordcount,
    merge_counts,
    run_wordcount,
    top_words,
)


def main():
    n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    documents = generate_corpus(get_profile("tiny"))
    expected = merge_counts(map_wordcount(d) for d in documents)

    portfile = tempfile.mktemp(prefix="dionea-mapreduce-")
    with Dionea(program="wordcount", portfile_path=portfile,
                park_timeout=60.0) as debugger:
        client = DebugClient()
        client.watch_portfile(debugger.portfile)
        time.sleep(0.2)

        # Break on the map function's entry: workers stop on their
        # first document.
        debugger.server.engine.breakpoints.add_function("map_wordcount")
        print("[client] function breakpoint on map_wordcount()")

        box = {}
        job = threading.Thread(
            target=lambda: box.setdefault(
                "counts", run_wordcount(documents, n_workers=n_workers,
                                        timeout=120)))
        job.start()

        # Walk stopped workers as they appear; inspect the first one.
        inspected = False
        released = set()
        deadline = time.monotonic() + 60
        while job.is_alive() and time.monotonic() < deadline:
            for view in client.stopped_views():
                if view.ue.pid == os.getpid():
                    continue
                if not inspected:
                    capture = view.capture
                    print(f"[client] worker {view.ue.pid} stopped at "
                          f"{capture.top.function}() "
                          f"line {capture.top.line}")
                    doc = view.evaluate("len(document[1])")
                    print(f"[client]   eval len(document[1]) -> {doc['value']}")
                    inspected = True
                session = view.session
                try:
                    for bp in session.request("breaks"):
                        session.request("clear_break", {"id": bp["id"]})
                    view.cont()
                    released.add(view.ue.pid)
                except Exception:  # noqa: BLE001 - worker already gone
                    pass
            time.sleep(0.02)
        job.join(60)

        counts = box.get("counts")
        ok = counts == expected
        print(f"\n[result] {len(documents)} documents, "
              f"{len(counts or {})} distinct words, "
              f"{len(released)} workers were stopped and released")
        print(f"[result] counts match serial reference: "
              f"{'YES' if ok else 'NO'}")
        print("[result] top words:")
        for word, count in top_words(counts or {}, 8):
            print(f"    {count:6d}  {word}")
        client.close()
        return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

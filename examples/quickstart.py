#!/usr/bin/env python
"""Quickstart: debug a forking program with the Dionea-style debugger.

What this demonstrates (paper sections 4-5 in ~80 lines):

1. start a debug server inside the process (``Dionea``);
2. attach a client and set a breakpoint;
3. ``os.fork`` a worker — the augmented fork runs handler phases A/B/C,
   the child re-establishes its own debug server and announces itself
   through the port file;
4. the client auto-attaches to the child, sees it stop at the
   *inherited* breakpoint, inspects its variables remotely, resumes it.

Run:  python examples/quickstart.py
"""

import os
import sys
import tempfile
import time

from repro.client import DebugClient
from repro.core import Dionea


def child_work(iterations):
    """The debuggee the child runs; the breakpoint lands in this loop."""
    total = 0
    for step in range(iterations):
        total += step * step          # <- breakpoint here
    return total


BREAK_LINE = child_work.__code__.co_firstlineno + 4  # the "+=" line


def main():
    portfile = tempfile.mktemp(prefix="dionea-quickstart-")
    with Dionea(program="quickstart", portfile_path=portfile,
                park_timeout=30.0) as debugger:
        print(f"[parent {os.getpid()}] debug server on port "
              f"{debugger.port}")

        # One client, watching the rendezvous file: every debuggee —
        # present and future — attaches automatically (1 client : N
        # servers, paper Fig. 1).
        client = DebugClient()
        client.watch_portfile(debugger.portfile)
        time.sleep(0.2)

        # A breakpoint set in the parent is inherited by forked children
        # (the Fig. 4 metadata block survives the fork by design).
        debugger.set_breakpoint(os.path.abspath(__file__), BREAK_LINE)
        print(f"[parent] breakpoint at {__file__}:{BREAK_LINE}")

        pid = os.fork()
        if pid == 0:
            # ---- child: just run the work; the debugger does the rest.
            result = child_work(10)
            os._exit(0 if result == 285 else 1)

        # ---- parent: drive the child through the client.
        session = client.session_for_pid(pid, timeout=10)
        print(f"[client] auto-attached to child pid {session.pid} "
              f"(generation {session.request('info')['fork_generation']})")

        view = client.wait_for_stop(timeout=10)[0]
        capture = view.wait_stopped(10)
        print(f"[client] child stopped: {capture.reason} at "
              f"{capture.top.file}:{capture.top.line} "
              f"in {capture.top.function}()")

        # Remote evaluation and the Variables view (paper Fig. 2).
        print(f"[client] child's locals: {capture.top.locals}")
        print(f"[client] eval 'iterations * 2' in child -> "
              f"{view.evaluate('iterations * 2')['value']}")

        # Render what the GUI's source view would show.
        for line in client.activate(view)["source"]:
            print(f"    {line}")

        # Clear the child's breakpoints and set it free.
        for bp in session.request("breaks"):
            session.request("clear_break", {"id": bp["id"]})
        view.cont()

        _, status = os.waitpid(pid, 0)
        code = os.waitstatus_to_exitcode(status)
        print(f"[parent] child exited with {code}")
        client.close()
        return code


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""§6.2 — finding the exact line of a fork-induced deadlock (Listing 5).

The paper's Ruby program pushes to an inter-thread Queue from a parent
thread and pops it inside a forked child.  Only the forking thread
survives a fork, so the pushing thread does not exist in the child and
the pop blocks forever.  Ruby prints a cryptic fatal message; *"Dionea
shows the line number where the deadlock has occurred"* (Fig. 7).

This example reproduces that exact scenario with repro.mp.ThreadQueue
and prints the debugger's deadlock report for the child: the blocked
resource, the blocked UE, and — the payoff — the precise
``file:line (function)`` of the hang.

Run:  python examples/deadlock_hunt.py
"""

import os
import sys
import tempfile
import threading
import time

from repro.client import DebugClient
from repro.core import Dionea
from repro.mp.queues import ThreadQueue


def child_main(queue):
    """Listing 5's fork block: pop a queue only a parent thread fills."""
    item = queue.get(timeout=8)       # <- the deadlock line (Fig. 7)
    return item


DEADLOCK_LINE = child_main.__code__.co_firstlineno + 2


def main():
    portfile = tempfile.mktemp(prefix="dionea-deadlock-")
    with Dionea(program="deadlock-hunt", portfile_path=portfile,
                park_timeout=30.0) as debugger:
        client = DebugClient()
        client.watch_portfile(debugger.portfile)
        time.sleep(0.2)

        queue = ThreadQueue(name="listing5")

        # Listing 5, lines 5-9: a parent thread that pushes after a nap.
        threading.Thread(
            target=lambda: (time.sleep(2.0), queue.put(True)),
            daemon=True).start()

        # Listing 5, line 13: fork and pop inside the child.
        pid = os.fork()
        if pid == 0:
            try:
                child_main(queue)
                os._exit(1)           # would mean no deadlock — a bug
            except Exception:
                os._exit(0)           # timeout: the deadlock was real

        session = client.session_for_pid(pid, timeout=10)
        print(f"[client] attached to forked child {pid}")

        # Poll the child's wait-for graph until the block registers.
        report = {}
        for _ in range(100):
            report = session.request("deadlock_report")
            if report["waiting"]:
                break
            time.sleep(0.05)

        if not report.get("waiting"):
            print("no deadlock observed (unexpected)")
            return 1

        print("\n=== child deadlock report (compare paper Fig. 7) ===")
        print(f"all debuggee threads blocked: {report['all_blocked']}")
        for wait in report["waiting"]:
            print(f"  {wait['ue']} blocked on {wait['resource']}")
            print(f"      at {wait['location']}")
        expected = f"{os.path.abspath(__file__)}:{DEADLOCK_LINE}"
        located = report["waiting"][0]["location"]
        print(f"\nexact line identified: "
              f"{'YES' if located.startswith(expected) else 'NO'} "
              f"({located})")

        # Contrast with the parent: its pusher thread is alive, so the
        # parent is NOT deadlocked — only the child is.
        parent_report = debugger.report_deadlocks()
        print(f"parent all_blocked: {parent_report['all_blocked']} "
              f"(the pusher thread only exists here)")

        _, status = os.waitpid(pid, 0)
        client.close()
        return 0 if os.waitstatus_to_exitcode(status) == 0 else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Hot-path import lint: no ``logging`` in the low-intrusion packages.

The stdlib ``logging`` module takes a module-level lock on every emit,
formats eagerly and may do I/O under that lock — every one of which
violates the hot-path discipline that :mod:`repro.util.ringlog` and
:mod:`repro.obs` exist to uphold (§3's low-intrusion promise applied to
the debugger's own internals).  A single stray ``import logging`` in the
tracing, fork-hook, mp or obs packages is how that discipline erodes, so
CI fails on it.

A second check guards the trace engine's global-dispatch fast path: the
``_global_dispatch`` body must not contain any ``obs_metrics`` attribute
lookup.  That function runs on every call event of every debuggee
thread; its counters are plain ints exported as callback gauges at
install time, and a casually added ``obs_metrics.inc(...)`` would put an
attribute lookup plus a shard update on the path the §7 overhead budget
is spent on.

Usage: ``python tools/lint_hotpath.py [repo-root]`` — exits non-zero and
prints one line per offending import.
"""

from __future__ import annotations

import ast
import os
import sys

#: Packages whose code runs on the tracing/fork/IPC hot paths.
HOT_PACKAGES = ("tracing", "forkhooks", "mp", "obs")

#: Modules that must never be imported there.
BANNED = {"logging"}


def find_banned_imports(path: str) -> list:
    """(lineno, module) for every banned import in the file at *path*."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in BANNED:
                    hits.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module is not None:
                root = node.module.split(".")[0]
                if root in BANNED:
                    hits.append((node.lineno, node.module))
    return hits


#: Function whose body is the global-trace fast path, and the name that
#: must not be attribute-accessed inside it.
FASTPATH_FUNCTION = "_global_dispatch"
FASTPATH_BANNED_NAME = "obs_metrics"


def find_fastpath_metric_lookups(path: str) -> list:
    """(lineno, source) for each ``obs_metrics.<attr>`` inside the
    global-dispatch fast path of the file at *path*.  Returns a single
    sentinel entry if the function is missing entirely — a rename must
    update this lint, not silently disable it."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    function = None
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == FASTPATH_FUNCTION):
            function = node
            break
    if function is None:
        return [(0, f"function {FASTPATH_FUNCTION!r} not found — "
                    f"update tools/lint_hotpath.py for the rename")]
    hits = []
    for node in ast.walk(function):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == FASTPATH_BANNED_NAME):
            hits.append((node.lineno,
                         f"{FASTPATH_BANNED_NAME}.{node.attr}"))
    return hits


#: The client reactor loop must never block: no sleeping, and no direct
#: socket I/O calls — all I/O goes through the resumable SendBuffer /
#: RecvBuffer pumps in repro.util.framing, and all waiting through the
#: selector timeout.  A casually added ``time.sleep`` or ``sock.recv``
#: in that module stalls EVERY attached session at once.
REACTOR_MODULE = os.path.join("src", "repro", "client", "reactor.py")
REACTOR_BANNED_ATTRS = {"sleep", "recv", "recv_into", "sendall",
                        "recvfrom", "accept"}
REACTOR_BANNED_NAMES = {"recv_frame", "send_frame", "sleep"}


def find_reactor_blocking_calls(path: str) -> list:
    """(lineno, source) for every blocking-looking call in the reactor.

    Flags calls of ``<anything>.sleep/.recv/.recvfrom/.recv_into/
    .sendall/.accept`` and bare calls of ``recv_frame``/``send_frame``/
    ``sleep``.  (``SendBuffer.pump``'s own ``sock.send`` lives in
    repro.util.framing, outside this module — by design.)
    """
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    hits = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in REACTOR_BANNED_ATTRS):
            hits.append((node.lineno, f".{func.attr}(...)"))
        elif (isinstance(func, ast.Name)
                and func.id in REACTOR_BANNED_NAMES):
            hits.append((node.lineno, f"{func.id}(...)"))
    return hits


#: The fork-handler prepare/child phases run with the debuggee frozen
#: (prepare holds every sync object; the child has exactly one thread
#: and no listener yet).  A blocking call there — a socket send, a log
#: emit, an un-timed lock wait — turns every fork() into a stall the
#: do-no-harm invariant forbids.  Phase bodies may only touch memory
#: and the ringlog; anything that can wait on another party is banned.
FORK_PHASE_MODULES = {
    os.path.join("src", "repro", "core", "handlers.py"): (
        "prepare_fork", "handle_parent_at_fork", "handle_child_at_fork",
        "handle_child_obs"),
    os.path.join("src", "repro", "forkhooks", "registry.py"): (
        "run_prepare", "run_parent", "run_child", "_unwind"),
}
FORK_PHASE_BANNED_ATTRS = {"sendall", "send", "recv", "recv_into",
                           "accept", "connect", "sleep",
                           "info", "warning", "error", "debug"}
FORK_PHASE_BANNED_NAMES = {"sleep"}


def find_fork_phase_blocking_calls(path: str, function_names) -> list:
    """(lineno, what) for blocking-looking calls inside the named
    fork-phase functions of the file at *path* (nested defs included).

    Flags ``<anything>.sendall/.send/.recv/.accept/.connect/.sleep``
    and logging-style ``.info/.warning/...`` calls, bare ``sleep``, and
    ``.acquire()`` with neither arguments nor a ``timeout=`` keyword —
    an unbounded lock wait on the one path that must never wait.
    Returns a sentinel entry per function missing entirely, so a rename
    updates this lint instead of silently disabling it.
    """
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    functions = {}
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in function_names):
            functions[node.name] = node
    hits = []
    for name in function_names:
        if name not in functions:
            hits.append((0, f"function {name!r} not found — update "
                            f"tools/lint_hotpath.py for the rename"))
    for name, function in sorted(functions.items()):
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in FORK_PHASE_BANNED_ATTRS:
                    hits.append((node.lineno,
                                 f".{func.attr}(...) in {name}"))
                elif (func.attr == "acquire" and not node.args
                        and not any(kw.arg == "timeout"
                                    for kw in node.keywords)):
                    hits.append((node.lineno,
                                 f".acquire() without timeout in {name}"))
            elif (isinstance(func, ast.Name)
                    and func.id in FORK_PHASE_BANNED_NAMES):
                hits.append((node.lineno, f"{func.id}(...) in {name}"))
    return hits


#: Timestamp discipline for the causal-timeline modules: cross-process
#: ordering is computed from monotonic stamps, wall clocks are carried
#: only as *paired* anchors for display alignment (NTP slew or a clock
#: step must never reorder a timeline).  So inside these modules any
#: function that reads ``time.time()`` must read ``time.monotonic()``
#: in the same function — a lone wall-clock read is a latent ordering
#: bug.
CLOCK_PAIR_MODULES = (
    os.path.join("src", "repro", "obs", "spans.py"),
    os.path.join("src", "repro", "obs", "blackbox.py"),
    os.path.join("src", "repro", "obs", "causality.py"),
)


def find_unpaired_wall_clock(path: str) -> list:
    """(lineno, what) for each function calling ``time.time()`` without
    a matching ``time.monotonic()`` call in the same function body."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)

    def clock_calls(function) -> dict:
        calls = {"time": [], "monotonic": []}
        for node in ast.walk(function):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "time"
                    and node.func.attr in calls):
                calls[node.func.attr].append(node.lineno)
        return calls

    hits = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        calls = clock_calls(node)
        if calls["time"] and not calls["monotonic"]:
            hits.append((calls["time"][0],
                         f"time.time() without time.monotonic() "
                         f"in {node.name}"))
    return hits


def main(argv: list) -> int:
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    problems = []
    for package in HOT_PACKAGES:
        package_dir = os.path.join(root, "src", "repro", package)
        if not os.path.isdir(package_dir):
            print(f"lint-hotpath: missing package dir {package_dir}",
                  file=sys.stderr)
            return 2
        for dirpath, _dirnames, filenames in os.walk(package_dir):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                for lineno, module in find_banned_imports(path):
                    rel = os.path.relpath(path, root)
                    problems.append(
                        f"{rel}:{lineno}: imports {module!r} "
                        f"(banned on the hot path)")
    engine_path = os.path.join(root, "src", "repro", "tracing", "engine.py")
    if not os.path.isfile(engine_path):
        print(f"lint-hotpath: missing {engine_path}", file=sys.stderr)
        return 2
    for lineno, what in find_fastpath_metric_lookups(engine_path):
        rel = os.path.relpath(engine_path, root)
        problems.append(
            f"{rel}:{lineno}: {what} inside {FASTPATH_FUNCTION} "
            f"(no obs lookups on the global-trace fast path; use a "
            f"plain int + callback gauge)")
    reactor_path = os.path.join(root, REACTOR_MODULE)
    if not os.path.isfile(reactor_path):
        print(f"lint-hotpath: missing {reactor_path}", file=sys.stderr)
        return 2
    for lineno, what in find_reactor_blocking_calls(reactor_path):
        rel = os.path.relpath(reactor_path, root)
        problems.append(
            f"{rel}:{lineno}: blocking call {what} in the client "
            f"reactor (the loop serves every session; wait via the "
            f"selector, do I/O via the framing pumps)")
    for module, function_names in sorted(FORK_PHASE_MODULES.items()):
        phase_path = os.path.join(root, module)
        if not os.path.isfile(phase_path):
            print(f"lint-hotpath: missing {phase_path}", file=sys.stderr)
            return 2
        for lineno, what in find_fork_phase_blocking_calls(
                phase_path, function_names):
            rel = os.path.relpath(phase_path, root)
            problems.append(
                f"{rel}:{lineno}: blocking call {what} in a fork-phase "
                f"body (prepare/child run with the debuggee frozen; "
                f"memory and the ringlog only)")
    for module in CLOCK_PAIR_MODULES:
        clock_path = os.path.join(root, module)
        if not os.path.isfile(clock_path):
            print(f"lint-hotpath: missing {clock_path}", file=sys.stderr)
            return 2
        for lineno, what in find_unpaired_wall_clock(clock_path):
            rel = os.path.relpath(clock_path, root)
            problems.append(
                f"{rel}:{lineno}: {what} (timeline modules must stamp "
                f"wall+monotonic pairs; a lone wall clock cannot order "
                f"events across processes)")
    if problems:
        print("\n".join(problems))
        return 1
    print(f"lint-hotpath: OK ({', '.join(HOT_PACKAGES)} are "
          f"logging-free; {FASTPATH_FUNCTION} is obs-free; the client "
          f"reactor has no blocking calls; fork-phase bodies have no "
          f"blocking calls; timeline modules pair wall with monotonic)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

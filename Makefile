# Test tiers.
#
#   make test    — tier 1: unit + property + integration (excludes stress
#                  via pyproject addopts); the gate every change must pass.
#   make stress  — the seeded fault-injection scenarios in tests/stress
#                  (pytest -m stress overrides the addopts exclusion).
#   make chaos   — the adversarial-debuggee do-no-harm sweep in
#                  tests/chaos (each scenario across ≥10 seeds).
#   make check   — all three tiers.
#
# Every target is wall-clock bounded so a wedged scenario kills the run
# instead of the CI job.

PYTHON      ?= python
PYTHONPATH  := src
TIER1_LIMIT ?= 900
STRESS_LIMIT ?= 600
CHAOS_LIMIT ?= 900
# Per-test cap (seconds), enforced inside pytest (pytest-timeout when
# installed, SIGALRM fallback otherwise) so a single wedged test fails
# with its name attached instead of burning the whole job limit.
TEST_TIMEOUT ?= 120

BENCH_LIMIT ?= 900

.PHONY: test stress chaos check lint-hotpath bench bench-json bench-trace bench-fleet bench-fork

test:
	timeout $(TIER1_LIMIT) env PYTHONPATH=$(PYTHONPATH) \
		DIONEA_TEST_TIMEOUT=$(TEST_TIMEOUT) $(PYTHON) -m pytest -x

stress:
	timeout $(STRESS_LIMIT) env PYTHONPATH=$(PYTHONPATH) \
		DIONEA_TEST_TIMEOUT=$(TEST_TIMEOUT) $(PYTHON) -m pytest tests/stress -m stress

# Adversarial debuggees (hung/raising/fork-calling handlers, exec,
# daemonize, mid-fork SIGKILL) swept across seeds under the do-no-harm
# harness: debugged output, exit status and forkability must be
# byte-identical to the bare run.
chaos:
	timeout $(CHAOS_LIMIT) env PYTHONPATH=$(PYTHONPATH) \
		DIONEA_TEST_TIMEOUT=$(TEST_TIMEOUT) $(PYTHON) -m pytest tests/chaos -m chaos

# Hot-path discipline: the tracing/forkhooks/mp/obs packages must never
# import stdlib `logging` (module lock + eager formatting + I/O).
lint-hotpath:
	$(PYTHON) tools/lint_hotpath.py

# Telemetry overhead artifact: the §7 overhead pair plus the
# metrics-on vs metrics-off arm, written to BENCH_obs.json.
bench-json:
	timeout $(BENCH_LIMIT) env PYTHONPATH=$(PYTHONPATH) \
		$(PYTHON) benchmarks/bench_obs.py --out BENCH_obs.json

# Trace-dispatch overhead artifact: the §7 overhead pair under the
# per-code fast path, plus the no-breakpoint attach arm (gated at 15%
# over the normal run) — written to BENCH_trace.json.  Nonzero exit on
# any gate breach.
bench-trace:
	timeout $(BENCH_LIMIT) env PYTHONPATH=$(PYTHONPATH) \
		$(PYTHON) benchmarks/bench_trace.py --out BENCH_trace.json

# Fleet-scale client artifact: 200 forked debug-server workers attached
# by one client — gates the O(1) thread bill, the pipelined-sweep
# speedup over the serial baseline, and the idle-attached CPU budget.
# Written to BENCH_fleet.json; nonzero exit on any gate breach.
bench-fleet:
	timeout $(BENCH_LIMIT) env PYTHONPATH=$(PYTHONPATH) \
		$(PYTHON) benchmarks/bench_fleet.py --out BENCH_fleet.json

# Fork-latency artifact: the parent-side prepare-fast-path bracket cost
# under an attached debugger, gated at ≤ 2× a bare fork(2); end-to-end
# cycle medians recorded ungated for context.  Written to
# BENCH_fork.json; nonzero exit on a gate breach.
bench-fork:
	timeout $(BENCH_LIMIT) env PYTHONPATH=$(PYTHONPATH) \
		$(PYTHON) benchmarks/bench_fork.py --out BENCH_fork.json

bench: bench-json bench-trace bench-fleet bench-fork

check: lint-hotpath test stress chaos

# Test tiers.
#
#   make test    — tier 1: unit + property + integration (excludes stress
#                  via pyproject addopts); the gate every change must pass.
#   make stress  — the seeded fault-injection scenarios in tests/stress
#                  (pytest -m stress overrides the addopts exclusion).
#   make check   — both tiers.
#
# Every target is wall-clock bounded so a wedged scenario kills the run
# instead of the CI job.

PYTHON      ?= python
PYTHONPATH  := src
TIER1_LIMIT ?= 900
STRESS_LIMIT ?= 600
# Per-test cap (seconds), enforced inside pytest (pytest-timeout when
# installed, SIGALRM fallback otherwise) so a single wedged test fails
# with its name attached instead of burning the whole job limit.
TEST_TIMEOUT ?= 120

.PHONY: test stress check

test:
	timeout $(TIER1_LIMIT) env PYTHONPATH=$(PYTHONPATH) \
		DIONEA_TEST_TIMEOUT=$(TEST_TIMEOUT) $(PYTHON) -m pytest -x

stress:
	timeout $(STRESS_LIMIT) env PYTHONPATH=$(PYTHONPATH) \
		DIONEA_TEST_TIMEOUT=$(TEST_TIMEOUT) $(PYTHON) -m pytest tests/stress -m stress

check: test stress
